#ifndef MDBS_GTM_GTM1_H_
#define MDBS_GTM_GTM1_H_

#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/status.h"
#include "gtm/global_txn.h"
#include "gtm/gtm2.h"
#include "gtm/serialization_function.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/task_runner.h"
#include "storage/framing.h"
#include "storage/log_device.h"

namespace mdbs::gtm {

struct GtmLogRecord;
struct GtmLogAnalysis;
class GtmLogWriter;
class GtmLogReplayer;

/// The "servers" of the paper (Figure 1): GTM1's asynchronous gateway to the
/// local DBMSs, one logical server per transaction per site. The MDBS
/// facade implements it over LocalDbms instances plus network delays.
class SiteGateway {
 public:
  using OpCallback = std::function<void(const Status&, int64_t value)>;
  using TxnCallback = std::function<void(const Status&)>;

  virtual ~SiteGateway() = default;

  virtual lcc::ProtocolKind ProtocolAt(SiteId site) const = 0;
  virtual void Begin(SiteId site, TxnId txn, GlobalTxnId global,
                     TxnCallback cb) = 0;
  virtual void Submit(SiteId site, TxnId txn, const DataOp& op,
                      OpCallback cb) = 0;
  virtual void Commit(SiteId site, TxnId txn, TxnCallback cb) = 0;
  virtual void Abort(SiteId site, TxnId txn, TxnCallback cb) = 0;
};

/// Shared between a warm-standby GTM pair: the failover fencing epoch plus
/// the count of stale-epoch rejections (gateway responses delivered, or
/// recovery attempted, under a superseded epoch). Promotion bumps `epoch`;
/// anything still acting under the old value is fenced out — the
/// split-brain guard. Mutated on the GTM strand only.
struct FencingToken {
  int64_t epoch = 0;
  int64_t stale_rejections = 0;
};

struct Gtm1Config {
  SchemeKind scheme = SchemeKind::kScheme3;
  /// Overrides `scheme` with a custom GTM2 scheme instance when set (used
  /// by the ablation experiments for scheme variants).
  std::function<std::unique_ptr<Scheme>()> scheme_factory;
  /// Ablation: place the forced-conflict ticket write after the last data
  /// operation at the site instead of right after begin. Shortens the
  /// ticket latch window at SGT sites at the cost of a later
  /// serialization point.
  bool ticket_last = false;
  /// Certified fast path: the static analyzer (src/analysis) proved the
  /// declared transaction mix conflict-robust, so every operation runs
  /// without GTM2 ser-op control and no ticket writes are injected. Pair
  /// it with scheme_factory = MakeRobustFastPath(scheme) so reports and
  /// the audit oracle keep the replaced scheme's kind. Each fast-path
  /// attempt records a kDowngrade trace event; the end-of-run oracle
  /// remains the runtime cross-check of the certificate.
  bool certified_fast_path = false;
  /// Base backoff before retrying an aborted attempt. The delay doubles per
  /// failed attempt up to `retry_backoff_cap`, with uniform jitter up to 2x
  /// (attempt 1 retries exactly as the pre-exponential code did).
  sim::Time retry_backoff = 500;
  /// Ceiling of the exponential backoff (before jitter).
  sim::Time retry_backoff_cap = 8000;
  /// Maximum attempts per global transaction before giving up.
  int max_attempts = 50;
  /// Abort an attempt whose next acknowledgement takes longer than this —
  /// the MDBS-level answer to cross-site blocking the paper leaves out of
  /// scope (it only treats serializability). 0 disables.
  sim::Time attempt_timeout = 200'000;
  /// How long a transaction may sit parked on a quarantined site before it
  /// is failed back to the caller instead of retried. 0 parks forever
  /// (until recovery or max_attempts elsewhere).
  sim::Time quarantine_park_timeout = 120'000;

  /// Durable GTM: write-ahead log every state transition (submission,
  /// attempt lifecycle, every GTM2 enqueue/cleanup, commit progress,
  /// park/quarantine churn) to `wal_device` before it takes effect, so
  /// Crash()/Recover() can rebuild the exact pre-crash WAIT/QUEUE/ticket
  /// state. Requires a snapshot-capable scheme (Schemes 0-3 / the
  /// certified fast path; the baselines are not).
  bool durable = false;
  /// Take a checkpoint after this many log records (0 disables; replay
  /// then starts from the log head).
  int64_t checkpoint_interval = 256;
  /// Modeled replay cost charged before the recovered GTM resumes:
  /// base + per_record * records.
  sim::Time recovery_base_time = 0;
  sim::Time recovery_time_per_record = 0;
  /// Backing device of the GTM WAL; a fresh in-memory device when null.
  std::shared_ptr<storage::LogDevice> wal_device;
  /// When to force the WAL to stable storage (mdbsim --wal_fsync=).
  storage::WalSyncConfig wal_sync;

  /// Warm standby: construct this GTM as the passive follower of a primary.
  /// It starts down (never submitted to directly), continuously applies
  /// WAL frames shipped via ReceiveShippedFrame into a live shadow GTM2,
  /// and only becomes active through Promote(). Requires `durable`; the
  /// standby always gets its own fresh `wal_device` (leave it null).
  bool standby = false;
  /// Fencing token shared across a primary/standby pair; self-created when
  /// null (single-GTM runs, where it never advances).
  std::shared_ptr<FencingToken> fence;
};

/// Counters of the durable GTM (all zero when Gtm1Config::durable is off).
struct GtmDurabilityStats {
  int64_t wal_records = 0;
  int64_t wal_bytes = 0;
  int64_t checkpoints = 0;
  int64_t crashes = 0;
  int64_t recoveries = 0;
  /// Log records scanned across all recoveries.
  int64_t replayed_records = 0;
  int64_t replayed_bytes = 0;
  /// GTM2 mutations (enqueues + cleanups) re-applied during replay.
  int64_t replayed_enqueues = 0;
  /// Mid-commit attempts forward-rolled to completion after a crash.
  int64_t resumed_commits = 0;
  /// In-flight attempts aborted at recovery and retried via fresh attempts.
  int64_t recovery_aborted_attempts = 0;
  /// Submissions that arrived during an outage and were buffered.
  int64_t buffered_submits = 0;
  /// Modeled replay ticks charged before resuming.
  int64_t recovery_ticks = 0;
  /// Sync barriers forced by the flush policy (`--wal_fsync=`).
  int64_t wal_syncs = 0;
};

/// Warm-standby shipping and failover counters (all zero when no standby is
/// configured). The shipped_* fields are counted by the shipping channel —
/// the MDBS facade's network model — and overlaid there; a bare Gtm1 fills
/// the applied/lag/promotion/fencing fields.
struct GtmStandbyStats {
  int64_t shipped_records = 0;
  int64_t shipped_bytes = 0;
  /// Frames applied into the shadow state (shipped ones plus the durable
  /// tail read back at promotion).
  int64_t applied_records = 0;
  int64_t applied_bytes = 0;
  /// Durable-but-unshipped backlog at promotion time: the records the
  /// promoted standby had to read from the primary's log before taking
  /// over. This — not the log length — bounds failover unavailability.
  int64_t lag_records = 0;
  int64_t lag_bytes = 0;
  int64_t promotions = 0;
  int64_t fencing_epoch = 0;
  int64_t stale_rejections = 0;
  /// Frames that arrived after promotion (shipped by the fenced primary's
  /// final strand turns) and were discarded.
  int64_t dropped_frames = 0;
};

/// Final outcome of one global transaction (across all its attempts).
struct GlobalTxnResult {
  Status status;
  int attempts = 0;
  sim::Time submit_time = 0;
  sim::Time finish_time = 0;
  /// Values read by the successful attempt, keyed by (site, item).
  ReadContext reads;
  /// False when some subtransactions committed before the failure (partial
  /// commit): resubmitting such a transaction would double-apply the
  /// committed sites' effects, so the driver's retry layer must not.
  bool retry_safe = true;
  /// Fencing epoch of the GTM that produced this result. Bumps at every
  /// standby promotion, so after a failover every response carries the new
  /// epoch — the no-split-brain acceptance check.
  int64_t gtm_epoch = 0;
};

struct Gtm1Stats {
  int64_t submitted = 0;
  int64_t committed = 0;
  int64_t failed = 0;           // Gave up after max_attempts.
  int64_t attempts = 0;
  int64_t aborted_attempts = 0; // Local aborts + scheme aborts + timeouts.
  int64_t scheme_aborts = 0;    // Subset demanded by the (non-conservative) scheme.
  int64_t timeouts = 0;
  int64_t partial_commits = 0;  // OCC validation failed after some commits.
  int64_t site_down_aborts = 0; // Attempts aborted by a site-down declaration.
  int64_t parked = 0;           // Jobs parked on a quarantined site.
  int64_t unparked = 0;         // Jobs resumed after the site recovered.
  int64_t park_timeouts = 0;    // Jobs failed back while still parked.
  int64_t fast_path_attempts = 0;  // Attempts run under the certified fast
                                   // path (no ser delays, no tickets).
};

/// GTM1 (paper §2.3 / Figure 1): drives global transactions. For every
/// transaction it determines the ser_k operations from the sites' protocol
/// kinds (injecting ticket writes where needed), inserts init/ser/fin
/// operations into GTM2's QUEUE, submits all other operations directly to
/// the sites, and never submits an operation before the previous one is
/// acknowledged. Local-DBMS aborts and timeouts retire the whole attempt;
/// GTM1 retries with a fresh attempt id after a randomized backoff.
class Gtm1 {
 public:
  using ResultCallback = std::function<void(const GlobalTxnResult&)>;

  /// `loop` is the GTM's strand; every GTM1/GTM2 state transition runs on
  /// it. In threaded mode it is the strand whose serialization acts as the
  /// scheme-level lock: ser_k release order is established there.
  Gtm1(const Gtm1Config& config, sim::TaskRunner* loop, SiteGateway* gateway,
       uint64_t seed);

  Gtm1(const Gtm1&) = delete;
  Gtm1& operator=(const Gtm1&) = delete;

  /// Out of line: GtmLogWriter is incomplete here.
  ~Gtm1();

  /// Submits a global transaction; `cb` fires once with the final outcome.
  void Submit(GlobalTxnSpec spec, ResultCallback cb);

  /// Number of transactions submitted but not yet finished.
  int64_t InFlight() const { return in_flight_; }

  /// Health-monitor downcall: `site` was declared down. Quarantines the
  /// site, aborts every live non-committing attempt that touches it (which
  /// retracts its GTM2 scheme state and drains its WAIT entries), and parks
  /// the affected jobs until the site is back. Attempts already in their
  /// commit phase are left alone — their outcome is decided site by site,
  /// exactly as on an attempt timeout.
  void OnSiteDown(SiteId site);

  /// Health-monitor downcall: `site` answers probes again. Lifts the
  /// quarantine and resumes parked jobs whose sites are all available.
  void OnSiteUp(SiteId site);

  bool IsQuarantined(SiteId site) const;

  /// Number of jobs currently parked on quarantined sites.
  int64_t ParkedJobs() const;

  /// Hook invoked on every Submit; the MDBS health monitor uses it to start
  /// probing lazily (so idle runs stay quiescent). Call before the first
  /// Submit.
  void SetActivityHook(std::function<void()> hook) {
    activity_hook_ = std::move(hook);
  }

  const Gtm2& gtm2() const { return *gtm2_; }
  Gtm2& mutable_gtm2() { return *gtm2_; }
  const Gtm1Stats& stats() const { return stats_; }

  /// Crashes the durable GTM (Gtm1Config::durable required): all volatile
  /// state — attempts, jobs, quarantine, GTM2's WAIT and scheme DS — is
  /// wiped as a process crash would. Clients' callbacks and specs survive
  /// in the client registry (clients hold them across the outage), and
  /// submissions arriving while down are buffered. No-op when already
  /// down.
  void Crash();

  /// Restarts the crashed GTM from its WAL: scans + analyzes the log,
  /// restores the latest checkpoint, replays the GTM2 mutation suffix to
  /// the exact pre-crash WAIT/scheme state, forward-rolls attempts that
  /// were mid-commit (site commits are idempotent), aborts and retries
  /// every other in-flight attempt, and re-parks parked jobs (their park
  /// timeout restarts). `down_sites` is the health monitor's *current*
  /// down set — it kept probing through the outage, so it supersedes the
  /// logged quarantine churn. After a modeled replay delay
  /// (recovery_base_time + per_record * records) the GTM resumes and
  /// drains buffered submissions in arrival order. No-op unless down.
  void Recover(const std::vector<SiteId>& down_sites);

  bool IsDown() const { return down_; }

  GtmDurabilityStats durability_stats() const;

  storage::LogDevice* wal_device() const { return wal_device_.get(); }

  /// Installs the WAL shipping tap (see GtmLogWriter::Shipper). The MDBS
  /// facade wires it to re-post every appended frame to the standby over
  /// the modeled network. No-op when not durable.
  void SetWalShipper(
      std::function<void(int64_t seq, std::vector<uint8_t> frame)> shipper);

  /// Standby only: applies one shipped WAL frame. `seq` is the record's
  /// log position; frames must arrive in order (the shipping channel is a
  /// FIFO). Frames arriving after promotion are counted and dropped — they
  /// were shipped by the fenced primary.
  void ReceiveShippedFrame(int64_t seq, std::vector<uint8_t> frame);

  /// Standby only: fenced failover. Takes over from the crashed `primary`:
  /// adopts its clients and buffered submissions, finishes applying the
  /// durable-but-unshipped log tail (the shipping lag — the only replay
  /// this path pays), bumps the shared fencing epoch so stale primary
  /// callbacks and recovery attempts are rejected, forward-rolls / aborts
  /// in-flight attempts exactly as Recover() does, seeds its own fresh WAL
  /// with a full checkpoint, and resumes after a modeled delay of
  /// recovery_base_time + per_record * tail records.
  void Promote(Gtm1* primary, const std::vector<SiteId>& down_sites);

  /// True until Promote() turns this standby into the active GTM.
  bool IsStandby() const { return standby_; }

  /// Shipping/failover counters; the shipped_* and fencing fields are
  /// overlaid (by the MDBS facade / from the shared token).
  GtmStandbyStats standby_stats() const;

  const std::shared_ptr<FencingToken>& fence() const { return fence_; }

  /// Test hook: fires after every logged GTM2 mutation (enqueue or abort
  /// cleanup) once the synchronous pump has quiesced. The crash-point fuzz
  /// battery captures a live GTM2 fingerprint at each firing and compares
  /// it against the state replayed from the corresponding log prefix.
  void SetGtm2MutationObserverForTest(std::function<void()> hook) {
    gtm2_observer_ = std::move(hook);
  }

  /// Records lifecycle events into `sink` (nullptr disables); forwarded to
  /// GTM2 and the scheme. Call before the first Submit.
  void EnableTrace(obs::TraceSink* sink);

  /// Feeds the always-on metrics engine (nullptr disables): per-transaction
  /// phase decomposition at every lifecycle transition, forwarded to GTM2
  /// for WAIT dwell and queue depth. Call before the first Submit.
  void EnableMetrics(obs::MetricsEngine* engine);

 private:
  struct Step {
    enum class Kind { kBegin, kTicket, kData };
    Kind kind = Kind::kData;
    SiteId site;
    /// Index into the spec's ops for kData; unused otherwise.
    size_t spec_index = 0;
    bool is_ser = false;
  };

  struct Job;

  struct Attempt {
    GlobalTxnId id;
    Job* job = nullptr;
    std::vector<Step> steps;
    size_t next_step = 0;
    std::unordered_map<SiteId, TxnId> sub_ids;
    std::vector<SiteId> begun_sites;
    ReadContext reads;
    bool failed = false;
    bool committing = false;
    /// Next begun_sites index to commit; meaningful while committing (the
    /// durable GTM checkpoints it to forward-roll after a crash).
    size_t commit_next = 0;
  };

  struct Job {
    /// Stable across attempts; kSubmit/kTxnCommit trace events carry it so
    /// a transaction's retries can be linked back together.
    int64_t id = 0;
    GlobalTxnSpec spec;
    ResultCallback cb;
    int attempts = 0;
    sim::Time submit_time = 0;
    GlobalTxnId current_attempt;
    /// Waiting for a quarantined site to recover; no live attempt exists.
    bool parked = false;
    /// Bumped on every park/unpark so a stale park-timeout timer can tell
    /// it lost the race.
    int64_t park_epoch = 0;
  };

  /// A submission buffered while the GTM is down, admitted at recovery.
  struct PendingSubmit {
    GlobalTxnSpec spec;
    ResultCallback cb;
  };

  /// What the clients retain across a GTM outage: their specs, result
  /// callbacks and submit times. Populated at Crash() from the in-flight
  /// jobs, consumed at Recover() when the logged jobs are rebuilt (value
  /// functions and callbacks are closures — unserializable — so this
  /// models the clients re-attaching, not the log storing them).
  struct ClientEntry {
    GlobalTxnSpec spec;
    ResultCallback cb;
    sim::Time submit_time = 0;
  };

  void StartAttempt(Job* job);
  std::vector<Step> BuildSteps(const GlobalTxnSpec& spec) const;
  void AdvanceStep(GlobalTxnId attempt_id);
  void PerformStep(Attempt* attempt, const Step& step,
                   SiteGateway::OpCallback done);
  void OnSerReleased(GlobalTxnId attempt_id, SiteId site);
  void OnAckForwarded(GlobalTxnId attempt_id, SiteId site);
  void OnValidatePassed(GlobalTxnId attempt_id);
  void CommitNextSite(GlobalTxnId attempt_id, size_t index);
  void FailAttempt(GlobalTxnId attempt_id, const Status& reason,
                   bool scheme_demanded);
  void FinishJob(Job* job, GlobalTxnResult result);
  Attempt* FindAttempt(GlobalTxnId attempt_id);
  Job* FindJob(int64_t job_id);
  /// True when any of the job's sites is quarantined.
  bool TouchesQuarantine(const Job& job) const;
  /// Retries a job after its backoff: parks it if a site it needs is
  /// quarantined, otherwise starts a fresh attempt.
  void RetryJob(int64_t job_id);
  void ParkJob(Job* job);
  /// Capped exponential backoff with uniform jitter for the job's next
  /// retry.
  sim::Time RetryDelay(const Job& job);

  /// Wraps a site-operation callback so the metrics engine closes the round
  /// trip (splitting site-busy vs network time) before the response is
  /// processed. Identity when metrics are off.
  SiteGateway::OpCallback WrapRoundTrip(GlobalTxnId attempt_id, TxnId sub,
                                        SiteGateway::OpCallback done);

  /// Appends to the GTM WAL (no-op when not durable or during replay) and
  /// schedules a checkpoint when the interval elapsed.
  void LogRecord(const GtmLogRecord& record);
  /// The ONLY paths to gtm2_->Enqueue / AbortCleanup: log the mutation,
  /// apply it (the pump runs to quiescence inside), then fire the test
  /// observer — so live fingerprints at observer time match what replaying
  /// the log prefix up to this record reproduces.
  void EnqueueGtm2(QueueOp op);
  void AbortCleanupGtm2(GlobalTxnId txn);
  void MaybeScheduleCheckpoint();
  void TakeCheckpoint();
  std::unique_ptr<Scheme> MakeFreshScheme() const;
  /// Arms (or re-arms, after recovery) the park timeout of a parked job.
  void ArmParkTimeout(Job* job);
  void ResumeAfterRecovery(int64_t replayed_records, bool promoted);
  /// Standby apply: feeds one decoded record to the running analysis and
  /// mirrors its GTM2 mutation (enqueue / cleanup / checkpoint restore)
  /// into the live shadow instance.
  void ApplyStandbyRecord(const GtmLogRecord& record, size_t index);
  /// Shared tail of Recover() and Promote(): installs the analysis-derived
  /// id counters and stats, re-attaches clients to the logged unfinished
  /// jobs, forward-rolls committing attempts' images and aborts undecided
  /// ones. On the promotion path the per-attempt kAttemptFail/kAbortCleanup
  /// records are NOT logged — the promoted GTM's fresh WAL gets one full
  /// checkpoint instead.
  void InstallRecoveredState(const GtmLogAnalysis& analysis,
                             const std::vector<SiteId>& down_sites,
                             bool standby_promotion);

  Gtm1Config config_;
  sim::TaskRunner* loop_;
  SiteGateway* gateway_;
  std::unique_ptr<Gtm2> gtm2_;
  Rng rng_;
  obs::TraceSink* trace_ = nullptr;
  obs::MetricsEngine* metrics_ = nullptr;
  int64_t next_txn_id_ = 0;
  int64_t next_attempt_id_ = 0;
  int64_t next_job_id_ = 0;
  int64_t in_flight_ = 0;
  std::unordered_map<GlobalTxnId, std::unique_ptr<Attempt>> attempts_;
  std::vector<std::unique_ptr<Job>> jobs_;
  std::unordered_set<SiteId> quarantined_;
  std::function<void()> activity_hook_;
  Gtm1Stats stats_;

  // Durability (config_.durable only; wal_ is null otherwise).
  std::shared_ptr<storage::LogDevice> wal_device_;
  std::unique_ptr<GtmLogWriter> wal_;
  bool down_ = false;
  /// Between Recover() and the delayed resume.
  bool recovering_ = false;
  /// Suppresses logging, site calls and observability while the WAL suffix
  /// is replayed through GTM2.
  bool replaying_ = false;
  bool checkpoint_scheduled_ = false;
  /// Bumped at every Crash(); scheduled lambdas and gateway callbacks
  /// capture it and drop themselves when stale, so pre-crash timers and
  /// acks cannot drive post-recovery state.
  int64_t epoch_ = 0;
  GtmDurabilityStats durability_stats_;
  std::vector<PendingSubmit> pending_submits_;
  std::map<int64_t, ClientEntry> client_registry_;
  std::function<void()> gtm2_observer_;

  // Warm standby (config_.standby; see ReceiveShippedFrame / Promote).
  bool standby_ = false;
  std::unique_ptr<GtmLogReplayer> standby_replayer_;
  GtmStandbyStats standby_stats_;
  std::shared_ptr<FencingToken> fence_;
  /// The fencing epoch this GTM is entitled to act under; once a promotion
  /// bumps the shared token past it, this instance is fenced out.
  int64_t fence_held_ = 0;
};

}  // namespace mdbs::gtm

#endif  // MDBS_GTM_GTM1_H_
