#include "gtm/serialization_function.h"

namespace mdbs::gtm {

const char* SerPointKindName(SerPointKind kind) {
  switch (kind) {
    case SerPointKind::kBegin:
      return "begin";
    case SerPointKind::kLastOp:
      return "last-op";
    case SerPointKind::kTicket:
      return "ticket";
  }
  return "?";
}

SerPointKind SerPointKindFor(lcc::ProtocolKind kind) {
  switch (kind) {
    case lcc::ProtocolKind::kTimestampOrdering:
    case lcc::ProtocolKind::kMultiversionTO:
      // Both assign their timestamp — the serialization position — at
      // begin.
      return SerPointKind::kBegin;
    case lcc::ProtocolKind::kTwoPhaseLocking:
    case lcc::ProtocolKind::kTwoPhaseLockingWoundWait:
    case lcc::ProtocolKind::kTwoPhaseLockingWaitDie:
      // All strict-2PL flavors reach their lock point at the last data
      // operation.
      return SerPointKind::kLastOp;
    case lcc::ProtocolKind::kSerializationGraph:
    case lcc::ProtocolKind::kOptimistic:
      return SerPointKind::kTicket;
  }
  return SerPointKind::kTicket;
}

}  // namespace mdbs::gtm
