#ifndef MDBS_GTM_QUEUE_OP_H_
#define MDBS_GTM_QUEUE_OP_H_

#include <string>
#include <vector>

#include "common/ids.h"

namespace mdbs::gtm {

/// Kinds of operations flowing through GTM2's QUEUE (paper §4, plus a
/// pre-commit validation hook used by the non-conservative baseline).
enum class QueueOpKind {
  /// init_i — announces transaction G̃_i and the sites it executes at;
  /// inserted by GTM1 before any other operation of G̃_i.
  kInit,
  /// ser_k(G_i) — requests execution of the serialization-function operation
  /// at site s_k.
  kSer,
  /// ack(ser_k(G_i)) — inserted by the server when the site completed the
  /// operation.
  kAck,
  /// Pre-commit validation point (trivial for conservative schemes; the
  /// ticket-optimistic baseline certifies here and may demand an abort).
  kValidate,
  /// fin_i — all acks received and the transaction committed; the scheme
  /// cleans up its data structures.
  kFin,
};

const char* QueueOpKindName(QueueOpKind kind);

/// One entry in GTM2's QUEUE.
struct QueueOp {
  QueueOpKind kind = QueueOpKind::kInit;
  GlobalTxnId txn;
  /// Site of a kSer/kAck operation; unused otherwise.
  SiteId site;
  /// Sites of the transaction; carried by kInit only (the paper's "init_i
  /// contains information relating to G̃_i").
  std::vector<SiteId> sites;

  static QueueOp Init(GlobalTxnId txn, std::vector<SiteId> sites) {
    return QueueOp{QueueOpKind::kInit, txn, SiteId(), std::move(sites)};
  }
  static QueueOp Ser(GlobalTxnId txn, SiteId site) {
    return QueueOp{QueueOpKind::kSer, txn, site, {}};
  }
  static QueueOp Ack(GlobalTxnId txn, SiteId site) {
    return QueueOp{QueueOpKind::kAck, txn, site, {}};
  }
  static QueueOp Validate(GlobalTxnId txn) {
    return QueueOp{QueueOpKind::kValidate, txn, SiteId(), {}};
  }
  static QueueOp Fin(GlobalTxnId txn) {
    return QueueOp{QueueOpKind::kFin, txn, SiteId(), {}};
  }

  std::string ToString() const;
};

}  // namespace mdbs::gtm

#endif  // MDBS_GTM_QUEUE_OP_H_
