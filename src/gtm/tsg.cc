#include "gtm/tsg.h"

#include <algorithm>
#include <deque>
#include <string>

#include "common/logging.h"

namespace mdbs::gtm {

void TransactionSiteGraph::InsertTxn(GlobalTxnId txn,
                                     const std::vector<SiteId>& sites) {
  MDBS_CHECK(!txns_.contains(txn)) << txn << " already in TSG";
  txns_[txn] = sites;
  for (SiteId site : sites) {
    sites_[site].insert(txn);
    ++edge_count_;
  }
}

void TransactionSiteGraph::RemoveTxn(GlobalTxnId txn) {
  auto it = txns_.find(txn);
  if (it == txns_.end()) return;
  for (SiteId site : it->second) {
    auto site_it = sites_.find(site);
    if (site_it != sites_.end()) {
      site_it->second.erase(txn);
      --edge_count_;
      if (site_it->second.empty()) sites_.erase(site_it);
    }
  }
  txns_.erase(it);
}

const std::vector<SiteId>& TransactionSiteGraph::SitesOf(
    GlobalTxnId txn) const {
  static const std::vector<SiteId>& empty = *new std::vector<SiteId>();
  auto it = txns_.find(txn);
  return it == txns_.end() ? empty : it->second;
}

Status TransactionSiteGraph::Validate() const {
  size_t txn_side_edges = 0;
  for (const auto& [txn, sites] : txns_) {
    std::unordered_set<int64_t> seen;
    for (SiteId site : sites) {
      if (!seen.insert(site.value()).second) {
        return Status::Internal("TSG: duplicate edge (" + ToString(txn) +
                                ", " + ToString(site) + ")");
      }
      auto site_it = sites_.find(site);
      if (site_it == sites_.end() || !site_it->second.contains(txn)) {
        return Status::Internal("TSG: edge (" + ToString(txn) + ", " +
                                ToString(site) +
                                ") missing from the site side");
      }
      ++txn_side_edges;
    }
  }
  size_t site_side_edges = 0;
  for (const auto& [site, txns] : sites_) {
    if (txns.empty()) {
      return Status::Internal("TSG: empty bucket retained for " +
                              ToString(site));
    }
    for (GlobalTxnId txn : txns) {
      auto txn_it = txns_.find(txn);
      if (txn_it == txns_.end() ||
          std::find(txn_it->second.begin(), txn_it->second.end(), site) ==
              txn_it->second.end()) {
        return Status::Internal("TSG: edge (" + ToString(txn) + ", " +
                                ToString(site) +
                                ") missing from the txn side");
      }
      ++site_side_edges;
    }
  }
  if (txn_side_edges != edge_count_ || site_side_edges != edge_count_) {
    return Status::Internal(
        "TSG: edge count " + std::to_string(edge_count_) + " != txn-side " +
        std::to_string(txn_side_edges) + " / site-side " +
        std::to_string(site_side_edges));
  }
  return Status::OK();
}

bool TransactionSiteGraph::EdgeOnCycle(GlobalTxnId txn, SiteId site,
                                       int64_t* steps) const {
  // BFS from `site` towards `txn`, never crossing the (txn, site) edge
  // itself: reaching txn means the edge closes a cycle.
  auto start_it = sites_.find(site);
  if (start_it == sites_.end()) return false;

  std::unordered_set<int64_t> visited_txns;
  std::unordered_set<int64_t> visited_sites{site.value()};
  std::deque<GlobalTxnId> frontier;
  for (GlobalTxnId neighbor : start_it->second) {
    if (steps != nullptr) ++*steps;
    if (neighbor == txn) continue;  // Skip the direct edge.
    frontier.push_back(neighbor);
    visited_txns.insert(neighbor.value());
  }
  while (!frontier.empty()) {
    GlobalTxnId current = frontier.front();
    frontier.pop_front();
    auto txn_it = txns_.find(current);
    if (txn_it == txns_.end()) continue;
    for (SiteId next_site : txn_it->second) {
      if (steps != nullptr) ++*steps;
      if (!visited_sites.insert(next_site.value()).second) continue;
      auto site_it = sites_.find(next_site);
      if (site_it == sites_.end()) continue;
      for (GlobalTxnId next_txn : site_it->second) {
        if (steps != nullptr) ++*steps;
        if (next_txn == txn) return true;
        if (visited_txns.insert(next_txn.value()).second) {
          frontier.push_back(next_txn);
        }
      }
    }
  }
  return false;
}


std::vector<GlobalTxnId> TransactionSiteGraph::Txns() const {
  std::vector<GlobalTxnId> txns;
  txns.reserve(txns_.size());
  for (const auto& [txn, sites] : txns_) txns.push_back(txn);
  std::sort(txns.begin(), txns.end());
  return txns;
}

}  // namespace mdbs::gtm
