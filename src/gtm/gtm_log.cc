#include "gtm/gtm_log.h"

#include <algorithm>
#include <string>

#include "common/logging.h"

namespace mdbs::gtm {

namespace {

using storage::Cursor;
using storage::PutI64;
using storage::PutU32;
using storage::PutU8;

void EncodeGtm1Stats(const Gtm1Stats& s, std::vector<uint8_t>* out) {
  PutI64(out, s.submitted);
  PutI64(out, s.committed);
  PutI64(out, s.failed);
  PutI64(out, s.attempts);
  PutI64(out, s.aborted_attempts);
  PutI64(out, s.scheme_aborts);
  PutI64(out, s.timeouts);
  PutI64(out, s.partial_commits);
  PutI64(out, s.site_down_aborts);
  PutI64(out, s.parked);
  PutI64(out, s.unparked);
  PutI64(out, s.park_timeouts);
  PutI64(out, s.fast_path_attempts);
}

void DecodeGtm1Stats(Cursor* c, Gtm1Stats* s) {
  s->submitted = c->I64();
  s->committed = c->I64();
  s->failed = c->I64();
  s->attempts = c->I64();
  s->aborted_attempts = c->I64();
  s->scheme_aborts = c->I64();
  s->timeouts = c->I64();
  s->partial_commits = c->I64();
  s->site_down_aborts = c->I64();
  s->parked = c->I64();
  s->unparked = c->I64();
  s->park_timeouts = c->I64();
  s->fast_path_attempts = c->I64();
}

void EncodeGtm2Stats(const Gtm2Stats& s, std::vector<uint8_t>* out) {
  PutI64(out, s.processed_ops);
  PutI64(out, s.wait_additions);
  PutI64(out, s.ser_wait_additions);
  PutI64(out, s.cond_evaluations);
  PutI64(out, s.failed_rescan_steps);
  PutI64(out, s.scheme_aborts);
}

void DecodeGtm2Stats(Cursor* c, Gtm2Stats* s) {
  s->processed_ops = c->I64();
  s->wait_additions = c->I64();
  s->ser_wait_additions = c->I64();
  s->cond_evaluations = c->I64();
  s->failed_rescan_steps = c->I64();
  s->scheme_aborts = c->I64();
}

void EncodeQueueOpInto(const QueueOp& op, std::vector<uint8_t>* out) {
  PutU8(out, static_cast<uint8_t>(op.kind));
  PutI64(out, op.txn.value());
  PutI64(out, op.site.value());
  PutU32(out, static_cast<uint32_t>(op.sites.size()));
  for (SiteId site : op.sites) PutI64(out, site.value());
}

bool DecodeQueueOpFrom(Cursor* c, QueueOp* op) {
  uint8_t kind = c->U8();
  if (kind > static_cast<uint8_t>(QueueOpKind::kFin)) return false;
  op->kind = static_cast<QueueOpKind>(kind);
  op->txn = GlobalTxnId(c->I64());
  op->site = SiteId(c->I64());
  uint32_t n = c->U32();
  op->sites.clear();
  for (uint32_t i = 0; i < n && c->ok(); ++i) op->sites.emplace_back(c->I64());
  return c->ok();
}

void EncodeCheckpoint(const GtmCheckpoint& cp, std::vector<uint8_t>* out) {
  PutI64(out, cp.next_txn_id);
  PutI64(out, cp.next_attempt_id);
  PutI64(out, cp.next_job_id);
  EncodeGtm1Stats(cp.gtm1_stats, out);
  PutU32(out, static_cast<uint32_t>(cp.jobs.size()));
  for (const GtmCheckpoint::JobImage& job : cp.jobs) {
    PutI64(out, job.id);
    PutI64(out, job.submit_time);
    PutI64(out, job.attempts);
    PutI64(out, job.current_attempt);
    PutU8(out, job.parked ? 1 : 0);
  }
  PutU32(out, static_cast<uint32_t>(cp.attempts.size()));
  for (const GtmCheckpoint::AttemptImage& attempt : cp.attempts) {
    PutI64(out, attempt.id);
    PutI64(out, attempt.job);
    PutU8(out, attempt.committing ? 1 : 0);
    PutI64(out, attempt.commit_index);
    PutU32(out, static_cast<uint32_t>(attempt.subs.size()));
    for (const auto& [site, sub] : attempt.subs) {
      PutI64(out, site);
      PutI64(out, sub);
    }
    PutU32(out, static_cast<uint32_t>(attempt.reads.size()));
    for (const auto& read : attempt.reads) {
      PutI64(out, read[0]);
      PutI64(out, read[1]);
      PutI64(out, read[2]);
    }
  }
  PutU32(out, static_cast<uint32_t>(cp.quarantined.size()));
  for (int64_t site : cp.quarantined) PutI64(out, site);
  PutU32(out, static_cast<uint32_t>(cp.wait.size()));
  for (const QueueOp& op : cp.wait) EncodeQueueOpInto(op, out);
  PutU32(out, static_cast<uint32_t>(cp.dead_txns.size()));
  for (int64_t txn : cp.dead_txns) PutI64(out, txn);
  EncodeGtm2Stats(cp.gtm2_stats, out);
  PutI64(out, cp.scheme_steps);
  PutU32(out, static_cast<uint32_t>(cp.scheme_state.size()));
  out->insert(out->end(), cp.scheme_state.begin(), cp.scheme_state.end());
}

bool DecodeCheckpoint(Cursor* c, GtmCheckpoint* cp) {
  cp->next_txn_id = c->I64();
  cp->next_attempt_id = c->I64();
  cp->next_job_id = c->I64();
  DecodeGtm1Stats(c, &cp->gtm1_stats);
  uint32_t jobs = c->U32();
  for (uint32_t i = 0; i < jobs && c->ok(); ++i) {
    GtmCheckpoint::JobImage job;
    job.id = c->I64();
    job.submit_time = c->I64();
    job.attempts = c->I64();
    job.current_attempt = c->I64();
    job.parked = c->U8() != 0;
    cp->jobs.push_back(job);
  }
  uint32_t attempts = c->U32();
  for (uint32_t i = 0; i < attempts && c->ok(); ++i) {
    GtmCheckpoint::AttemptImage attempt;
    attempt.id = c->I64();
    attempt.job = c->I64();
    attempt.committing = c->U8() != 0;
    attempt.commit_index = c->I64();
    uint32_t subs = c->U32();
    for (uint32_t j = 0; j < subs && c->ok(); ++j) {
      int64_t site = c->I64();
      int64_t sub = c->I64();
      attempt.subs.emplace_back(site, sub);
    }
    uint32_t reads = c->U32();
    for (uint32_t j = 0; j < reads && c->ok(); ++j) {
      std::array<int64_t, 3> read;
      read[0] = c->I64();
      read[1] = c->I64();
      read[2] = c->I64();
      attempt.reads.push_back(read);
    }
    cp->attempts.push_back(std::move(attempt));
  }
  uint32_t quarantined = c->U32();
  for (uint32_t i = 0; i < quarantined && c->ok(); ++i) {
    cp->quarantined.push_back(c->I64());
  }
  uint32_t wait = c->U32();
  for (uint32_t i = 0; i < wait && c->ok(); ++i) {
    QueueOp op;
    if (!DecodeQueueOpFrom(c, &op)) return false;
    cp->wait.push_back(std::move(op));
  }
  uint32_t dead = c->U32();
  for (uint32_t i = 0; i < dead && c->ok(); ++i) {
    cp->dead_txns.push_back(c->I64());
  }
  DecodeGtm2Stats(c, &cp->gtm2_stats);
  cp->scheme_steps = c->I64();
  uint32_t blob = c->U32();
  for (uint32_t i = 0; i < blob && c->ok(); ++i) {
    cp->scheme_state.push_back(c->U8());
  }
  return c->ok();
}

std::vector<uint8_t> EncodePayload(const GtmLogRecord& record) {
  std::vector<uint8_t> payload;
  PutU8(&payload, static_cast<uint8_t>(record.type));
  switch (record.type) {
    case GtmLogRecordType::kSubmit:
      PutI64(&payload, record.job);
      PutI64(&payload, record.time);
      break;
    case GtmLogRecordType::kAttemptStart:
      PutI64(&payload, record.attempt);
      PutI64(&payload, record.job);
      PutI64(&payload, record.index);
      break;
    case GtmLogRecordType::kBeginSite:
      PutI64(&payload, record.attempt);
      PutI64(&payload, record.site);
      PutI64(&payload, record.sub);
      break;
    case GtmLogRecordType::kRead:
      PutI64(&payload, record.attempt);
      PutI64(&payload, record.site);
      PutI64(&payload, record.item);
      PutI64(&payload, record.value);
      break;
    case GtmLogRecordType::kEnqueue:
      PutU8(&payload, record.code);
      PutI64(&payload, record.attempt);
      PutI64(&payload, record.site);
      PutU32(&payload, static_cast<uint32_t>(record.sites.size()));
      for (int64_t site : record.sites) PutI64(&payload, site);
      break;
    case GtmLogRecordType::kAbortCleanup:
      PutI64(&payload, record.attempt);
      break;
    case GtmLogRecordType::kAttemptFail:
      PutI64(&payload, record.attempt);
      PutU8(&payload, record.code);
      break;
    case GtmLogRecordType::kCommitStart:
      PutI64(&payload, record.attempt);
      break;
    case GtmLogRecordType::kCommitSite:
      PutI64(&payload, record.attempt);
      PutI64(&payload, record.index);
      break;
    case GtmLogRecordType::kFinish:
      PutI64(&payload, record.job);
      PutU8(&payload, record.code);
      PutI64(&payload, record.index);
      break;
    case GtmLogRecordType::kPark:
    case GtmLogRecordType::kUnpark:
      PutI64(&payload, record.job);
      break;
    case GtmLogRecordType::kSiteDown:
    case GtmLogRecordType::kSiteUp:
      PutI64(&payload, record.site);
      break;
    case GtmLogRecordType::kCheckpoint:
      EncodeCheckpoint(record.checkpoint, &payload);
      break;
  }
  return payload;
}

}  // namespace

bool DecodeGtmLogPayload(const uint8_t* data, size_t size,
                         GtmLogRecord* record) {
  Cursor c(data, size);
  uint8_t type = c.U8();
  if (type < static_cast<uint8_t>(GtmLogRecordType::kSubmit) ||
      type > static_cast<uint8_t>(GtmLogRecordType::kCheckpoint)) {
    return false;
  }
  record->type = static_cast<GtmLogRecordType>(type);
  switch (record->type) {
    case GtmLogRecordType::kSubmit:
      record->job = c.I64();
      record->time = c.I64();
      break;
    case GtmLogRecordType::kAttemptStart:
      record->attempt = c.I64();
      record->job = c.I64();
      record->index = c.I64();
      break;
    case GtmLogRecordType::kBeginSite:
      record->attempt = c.I64();
      record->site = c.I64();
      record->sub = c.I64();
      break;
    case GtmLogRecordType::kRead:
      record->attempt = c.I64();
      record->site = c.I64();
      record->item = c.I64();
      record->value = c.I64();
      break;
    case GtmLogRecordType::kEnqueue: {
      record->code = c.U8();
      if (record->code > static_cast<uint8_t>(QueueOpKind::kFin)) return false;
      record->attempt = c.I64();
      record->site = c.I64();
      uint32_t n = c.U32();
      for (uint32_t i = 0; i < n && c.ok(); ++i) {
        record->sites.push_back(c.I64());
      }
      break;
    }
    case GtmLogRecordType::kAbortCleanup:
      record->attempt = c.I64();
      break;
    case GtmLogRecordType::kAttemptFail:
      record->attempt = c.I64();
      record->code = c.U8();
      break;
    case GtmLogRecordType::kCommitStart:
      record->attempt = c.I64();
      break;
    case GtmLogRecordType::kCommitSite:
      record->attempt = c.I64();
      record->index = c.I64();
      break;
    case GtmLogRecordType::kFinish:
      record->job = c.I64();
      record->code = c.U8();
      record->index = c.I64();
      break;
    case GtmLogRecordType::kPark:
    case GtmLogRecordType::kUnpark:
      record->job = c.I64();
      break;
    case GtmLogRecordType::kSiteDown:
    case GtmLogRecordType::kSiteUp:
      record->site = c.I64();
      break;
    case GtmLogRecordType::kCheckpoint:
      if (!DecodeCheckpoint(&c, &record->checkpoint)) return false;
      break;
  }
  return c.ok() && c.exhausted();
}

const char* GtmLogRecordTypeName(GtmLogRecordType type) {
  switch (type) {
    case GtmLogRecordType::kSubmit:
      return "submit";
    case GtmLogRecordType::kAttemptStart:
      return "attempt_start";
    case GtmLogRecordType::kBeginSite:
      return "begin_site";
    case GtmLogRecordType::kRead:
      return "read";
    case GtmLogRecordType::kEnqueue:
      return "enqueue";
    case GtmLogRecordType::kAbortCleanup:
      return "abort_cleanup";
    case GtmLogRecordType::kAttemptFail:
      return "attempt_fail";
    case GtmLogRecordType::kCommitStart:
      return "commit_start";
    case GtmLogRecordType::kCommitSite:
      return "commit_site";
    case GtmLogRecordType::kFinish:
      return "finish";
    case GtmLogRecordType::kPark:
      return "park";
    case GtmLogRecordType::kUnpark:
      return "unpark";
    case GtmLogRecordType::kSiteDown:
      return "site_down";
    case GtmLogRecordType::kSiteUp:
      return "site_up";
    case GtmLogRecordType::kCheckpoint:
      return "checkpoint";
  }
  return "unknown";
}

std::vector<uint8_t> EncodeGtmLogRecord(const GtmLogRecord& record) {
  return storage::FramePayload(EncodePayload(record));
}

Status ReadGtmLog(storage::LogDevice& device, GtmLogScan* out) {
  *out = GtmLogScan{};
  std::vector<uint8_t> image;
  Status status = device.ReadAll(&image);
  if (!status.ok()) return status;
  storage::FrameScan frames;
  status = storage::ScanFrames(image, &frames);
  if (!status.ok()) return status;
  out->valid_bytes = frames.valid_bytes;
  out->torn_tail = frames.torn_tail;
  out->records.reserve(frames.payloads.size());
  for (const auto& [offset, length] : frames.payloads) {
    GtmLogRecord record;
    if (!DecodeGtmLogPayload(image.data() + offset, length, &record)) {
      return Status::Internal(
          "GTM log corruption: undecodable frame at byte " +
          std::to_string(offset - 8));
    }
    out->records.push_back(std::move(record));
  }
  return Status::OK();
}

void GtmLogWriter::Append(const GtmLogRecord& record) {
  std::vector<uint8_t> payload = EncodePayload(record);
  bool is_checkpoint = record.type == GtmLogRecordType::kCheckpoint;
  bool is_commit_point = is_checkpoint ||
                         record.type == GtmLogRecordType::kCommitStart ||
                         record.type == GtmLogRecordType::kFinish;
  frames_.AppendPayload(payload, is_checkpoint, is_commit_point);
  if (shipper_) {
    shipper_(frames_.records_written() - 1, storage::FramePayload(payload));
  }
}

namespace {

/// Applies one checkpoint record to the analysis accumulator.
void RestoreFromCheckpoint(const GtmCheckpoint& cp, GtmLogAnalysis* out) {
  out->next_txn_id = cp.next_txn_id;
  out->next_attempt_id = cp.next_attempt_id;
  out->next_job_id = cp.next_job_id;
  out->stats = cp.gtm1_stats;
  out->jobs.clear();
  for (const GtmCheckpoint::JobImage& job : cp.jobs) out->jobs[job.id] = job;
  out->attempts.clear();
  for (const GtmCheckpoint::AttemptImage& attempt : cp.attempts) {
    out->attempts[attempt.id] = attempt;
  }
  out->quarantined = cp.quarantined;
  out->gtm2_replay.clear();
}

void InsertSorted(std::vector<int64_t>* values, int64_t value) {
  auto it = std::lower_bound(values->begin(), values->end(), value);
  if (it == values->end() || *it != value) values->insert(it, value);
}

void EraseSorted(std::vector<int64_t>* values, int64_t value) {
  auto it = std::lower_bound(values->begin(), values->end(), value);
  if (it != values->end() && *it == value) values->erase(it);
}

}  // namespace

Status GtmLogReplayer::Apply(const GtmLogRecord& r, size_t index) {
  GtmLogAnalysis* out = &analysis_;
  switch (r.type) {
    case GtmLogRecordType::kCheckpoint:
      RestoreFromCheckpoint(r.checkpoint, out);
      out->checkpoint_index = index;
      break;
    case GtmLogRecordType::kSubmit: {
      GtmCheckpoint::JobImage job;
      job.id = r.job;
      job.submit_time = r.time;
      out->jobs[r.job] = job;
      ++out->stats.submitted;
      out->next_job_id = std::max(out->next_job_id, r.job + 1);
      break;
    }
    case GtmLogRecordType::kAttemptStart: {
      auto job = out->jobs.find(r.job);
      if (job == out->jobs.end()) {
        return Status::Internal("GTM log: attempt_start for unknown job " +
                                std::to_string(r.job));
      }
      GtmCheckpoint::AttemptImage attempt;
      attempt.id = r.attempt;
      attempt.job = r.job;
      out->attempts[r.attempt] = std::move(attempt);
      job->second.attempts = r.index;
      job->second.current_attempt = r.attempt;
      job->second.parked = false;
      ++out->stats.attempts;
      out->next_attempt_id = std::max(out->next_attempt_id, r.attempt + 1);
      break;
    }
    case GtmLogRecordType::kBeginSite: {
      auto attempt = out->attempts.find(r.attempt);
      if (attempt == out->attempts.end()) {
        return Status::Internal("GTM log: begin_site for unknown attempt " +
                                std::to_string(r.attempt));
      }
      attempt->second.subs.emplace_back(r.site, r.sub);
      out->next_txn_id = std::max(out->next_txn_id, r.sub + 1);
      break;
    }
    case GtmLogRecordType::kRead: {
      auto attempt = out->attempts.find(r.attempt);
      if (attempt == out->attempts.end()) {
        return Status::Internal("GTM log: read for unknown attempt " +
                                std::to_string(r.attempt));
      }
      attempt->second.reads.push_back({r.site, r.item, r.value});
      break;
    }
    case GtmLogRecordType::kEnqueue:
    case GtmLogRecordType::kAbortCleanup:
      out->gtm2_replay.push_back(index);
      break;
    case GtmLogRecordType::kAttemptFail: {
      auto attempt = out->attempts.find(r.attempt);
      if (attempt == out->attempts.end()) {
        return Status::Internal(
            "GTM log: attempt_fail for unknown attempt " +
            std::to_string(r.attempt));
      }
      auto job = out->jobs.find(attempt->second.job);
      if (job != out->jobs.end()) job->second.current_attempt = -1;
      out->attempts.erase(attempt);
      ++out->stats.aborted_attempts;
      switch (static_cast<GtmAttemptFailReason>(r.code)) {
        case GtmAttemptFailReason::kScheme:
          ++out->stats.scheme_aborts;
          break;
        case GtmAttemptFailReason::kTimeout:
          ++out->stats.timeouts;
          break;
        case GtmAttemptFailReason::kSiteDown:
          ++out->stats.site_down_aborts;
          break;
        case GtmAttemptFailReason::kSite:
        case GtmAttemptFailReason::kGtmCrash:
          break;
      }
      break;
    }
    case GtmLogRecordType::kCommitStart: {
      auto attempt = out->attempts.find(r.attempt);
      if (attempt == out->attempts.end()) {
        return Status::Internal(
            "GTM log: commit_start for unknown attempt " +
            std::to_string(r.attempt));
      }
      attempt->second.committing = true;
      attempt->second.commit_index = 0;
      break;
    }
    case GtmLogRecordType::kCommitSite: {
      auto attempt = out->attempts.find(r.attempt);
      if (attempt == out->attempts.end()) {
        return Status::Internal(
            "GTM log: commit_site for unknown attempt " +
            std::to_string(r.attempt));
      }
      attempt->second.commit_index = r.index + 1;
      break;
    }
    case GtmLogRecordType::kFinish: {
      auto job = out->jobs.find(r.job);
      if (job == out->jobs.end()) {
        return Status::Internal("GTM log: finish for unknown job " +
                                std::to_string(r.job));
      }
      if (job->second.current_attempt >= 0) {
        out->attempts.erase(job->second.current_attempt);
      }
      out->jobs.erase(job);
      switch (static_cast<GtmFinishOutcome>(r.code)) {
        case GtmFinishOutcome::kCommitted:
          ++out->stats.committed;
          break;
        case GtmFinishOutcome::kGaveUp:
          ++out->stats.failed;
          break;
        case GtmFinishOutcome::kPartial:
          ++out->stats.failed;
          ++out->stats.partial_commits;
          break;
        case GtmFinishOutcome::kParkTimeout:
          ++out->stats.failed;
          ++out->stats.park_timeouts;
          break;
      }
      break;
    }
    case GtmLogRecordType::kPark: {
      auto job = out->jobs.find(r.job);
      if (job == out->jobs.end()) {
        return Status::Internal("GTM log: park for unknown job " +
                                std::to_string(r.job));
      }
      job->second.parked = true;
      ++out->stats.parked;
      break;
    }
    case GtmLogRecordType::kUnpark: {
      auto job = out->jobs.find(r.job);
      if (job == out->jobs.end()) {
        return Status::Internal("GTM log: unpark for unknown job " +
                                std::to_string(r.job));
      }
      job->second.parked = false;
      ++out->stats.unparked;
      break;
    }
    case GtmLogRecordType::kSiteDown:
      InsertSorted(&out->quarantined, r.site);
      break;
    case GtmLogRecordType::kSiteUp:
      EraseSorted(&out->quarantined, r.site);
      break;
  }
  return Status::OK();
}

Status AnalyzeGtmLog(const std::vector<GtmLogRecord>& records,
                     GtmLogAnalysis* out) {
  GtmLogReplayer replayer;
  for (size_t i = 0; i < records.size(); ++i) {
    MDBS_RETURN_IF_ERROR(replayer.Apply(records[i], i));
  }
  *out = replayer.analysis();
  return Status::OK();
}

}  // namespace mdbs::gtm
