#include "gtm/gtm1.h"

#include <algorithm>

#include "common/logging.h"

namespace mdbs::gtm {

Gtm1::Gtm1(const Gtm1Config& config, sim::TaskRunner* loop,
           SiteGateway* gateway, uint64_t seed)
    : config_(config), loop_(loop), gateway_(gateway), rng_(seed) {
  Gtm2::Callbacks callbacks;
  callbacks.release_ser = [this](GlobalTxnId txn, SiteId site) {
    OnSerReleased(txn, site);
  };
  callbacks.forward_ack = [this](GlobalTxnId txn, SiteId site) {
    OnAckForwarded(txn, site);
  };
  callbacks.validate_passed = [this](GlobalTxnId txn) {
    // Defer: validate_passed fires inside the GTM2 pump.
    loop_->Schedule(0, [this, txn]() { OnValidatePassed(txn); });
  };
  callbacks.abort_txn = [this](GlobalTxnId txn) {
    loop_->Schedule(0, [this, txn]() {
      FailAttempt(txn, Status::TransactionAborted("GTM scheme abort"),
                  /*scheme_demanded=*/true);
    });
  };
  std::unique_ptr<Scheme> scheme = config.scheme_factory
                                       ? config.scheme_factory()
                                       : MakeScheme(config.scheme);
  gtm2_ = std::make_unique<Gtm2>(std::move(scheme), std::move(callbacks));
}

void Gtm1::EnableTrace(obs::TraceSink* sink) {
  trace_ = sink;
  gtm2_->EnableTrace(sink);
}

void Gtm1::EnableMetrics(obs::MetricsEngine* engine) {
  metrics_ = engine;
  gtm2_->EnableMetrics(engine);
}

SiteGateway::OpCallback Gtm1::WrapRoundTrip(GlobalTxnId attempt_id, TxnId sub,
                                            SiteGateway::OpCallback done) {
  if (metrics_ == nullptr) return done;
  return [this, attempt_id, sub, done = std::move(done)](const Status& status,
                                                         int64_t value) {
    Attempt* attempt = FindAttempt(attempt_id);
    if (attempt != nullptr) metrics_->EndRoundTrip(attempt->job->id, sub);
    done(status, value);
  };
}

void Gtm1::Submit(GlobalTxnSpec spec, ResultCallback cb) {
  MDBS_CHECK(!spec.ops.empty()) << "empty global transaction";
  ++stats_.submitted;
  ++in_flight_;
  auto job = std::make_unique<Job>();
  job->id = next_job_id_++;
  job->spec = std::move(spec);
  job->cb = std::move(cb);
  job->submit_time = loop_->now();
  if (trace_ != nullptr) {
    trace_->Record(obs::TraceEventKind::kSubmit, job->id, -1,
                   static_cast<int64_t>(job->spec.Sites().size()));
  }
  Job* raw = job.get();
  jobs_.push_back(std::move(job));
  if (metrics_ != nullptr) metrics_->TxnSubmitted(raw->id, raw->spec.Sites());
  if (activity_hook_) activity_hook_();
  if (TouchesQuarantine(*raw)) {
    // A needed site is already known-down: don't burn an attempt on it.
    ParkJob(raw);
    return;
  }
  StartAttempt(raw);
}

std::vector<Gtm1::Step> Gtm1::BuildSteps(const GlobalTxnSpec& spec) const {
  std::vector<Step> steps;
  std::vector<SiteId> seen;
  // Last data-op index per site, for the kLastOp serialization point.
  std::unordered_map<SiteId, size_t> last_data_index;
  for (size_t i = 0; i < spec.ops.size(); ++i) {
    last_data_index[spec.ops[i].site] = i;
  }
  // Certified fast path: the ser-op machinery exists to order what the
  // analyzer proved cannot become cyclic, so no step is a ser operation
  // (none routes through GTM2) and no ticket is injected.
  if (config_.certified_fast_path) {
    for (size_t i = 0; i < spec.ops.size(); ++i) {
      SiteId site = spec.ops[i].site;
      if (std::find(seen.begin(), seen.end(), site) == seen.end()) {
        seen.push_back(site);
        steps.push_back(Step{Step::Kind::kBegin, site, 0, false});
      }
      steps.push_back(Step{Step::Kind::kData, site, i, false});
    }
    return steps;
  }
  for (size_t i = 0; i < spec.ops.size(); ++i) {
    SiteId site = spec.ops[i].site;
    SerPointKind ser_point = SerPointKindFor(gateway_->ProtocolAt(site));
    if (std::find(seen.begin(), seen.end(), site) == seen.end()) {
      seen.push_back(site);
      steps.push_back(Step{Step::Kind::kBegin, site, 0,
                           ser_point == SerPointKind::kBegin});
      if (ser_point == SerPointKind::kTicket && !config_.ticket_last) {
        steps.push_back(Step{Step::Kind::kTicket, site, 0, true});
      }
    }
    steps.push_back(Step{Step::Kind::kData, site, i,
                         ser_point == SerPointKind::kLastOp &&
                             last_data_index[site] == i});
    if (ser_point == SerPointKind::kTicket && config_.ticket_last &&
        last_data_index[site] == i) {
      steps.push_back(Step{Step::Kind::kTicket, site, 0, true});
    }
  }
  return steps;
}

void Gtm1::StartAttempt(Job* job) {
  ++job->attempts;
  ++stats_.attempts;
  auto attempt = std::make_unique<Attempt>();
  attempt->id = GlobalTxnId(next_attempt_id_++);
  attempt->job = job;
  attempt->steps = BuildSteps(job->spec);
  job->current_attempt = attempt->id;
  GlobalTxnId attempt_id = attempt->id;
  std::vector<SiteId> sites = job->spec.Sites();
  attempts_[attempt_id] = std::move(attempt);
  if (metrics_ != nullptr) {
    metrics_->AttemptStarted(attempt_id, job->id);
    metrics_->Transition(job->id, obs::TxnPhase::kScheme);
  }
  if (trace_ != nullptr) {
    trace_->Record(obs::TraceEventKind::kAttemptStart, attempt_id.value(), -1,
                   job->id, job->attempts);
  }
  if (config_.certified_fast_path) {
    ++stats_.fast_path_attempts;
    if (trace_ != nullptr) {
      trace_->Record(obs::TraceEventKind::kDowngrade, attempt_id.value(), -1,
                     job->id);
    }
  }

  if (config_.attempt_timeout > 0) {
    loop_->Schedule(config_.attempt_timeout, [this, attempt_id]() {
      Attempt* timed_out = FindAttempt(attempt_id);
      if (timed_out == nullptr || timed_out->failed ||
          timed_out->committing) {
        return;
      }
      ++stats_.timeouts;
      if (trace_ != nullptr) {
        trace_->Record(obs::TraceEventKind::kAttemptTimeout,
                       attempt_id.value(), -1);
      }
      FailAttempt(attempt_id,
                  Status::TransactionAborted("attempt timed out"),
                  /*scheme_demanded=*/false);
    });
  }

  gtm2_->Enqueue(QueueOp::Init(attempt_id, std::move(sites)));
  AdvanceStep(attempt_id);
}

void Gtm1::AdvanceStep(GlobalTxnId attempt_id) {
  Attempt* attempt = FindAttempt(attempt_id);
  if (attempt == nullptr || attempt->failed) return;
  if (attempt->next_step == attempt->steps.size()) {
    // All operations acknowledged: pre-commit validation point.
    if (metrics_ != nullptr) {
      metrics_->Transition(attempt->job->id, obs::TxnPhase::kScheme);
    }
    gtm2_->Enqueue(QueueOp::Validate(attempt_id));
    return;
  }
  const Step& step = attempt->steps[attempt->next_step];
  if (step.is_ser) {
    // Route through GTM2; PerformStep happens when the scheme releases it.
    if (metrics_ != nullptr) {
      metrics_->Transition(attempt->job->id, obs::TxnPhase::kScheme);
    }
    gtm2_->Enqueue(QueueOp::Ser(attempt_id, step.site));
    return;
  }
  PerformStep(attempt, step,
              [this, attempt_id](const Status& status, int64_t) {
                Attempt* done = FindAttempt(attempt_id);
                if (done == nullptr || done->failed) return;
                if (!status.ok()) {
                  FailAttempt(attempt_id, status, /*scheme_demanded=*/false);
                  return;
                }
                ++done->next_step;
                AdvanceStep(attempt_id);
              });
}

void Gtm1::OnSerReleased(GlobalTxnId attempt_id, SiteId site) {
  Attempt* attempt = FindAttempt(attempt_id);
  if (attempt == nullptr || attempt->failed) return;
  MDBS_CHECK(attempt->next_step < attempt->steps.size());
  const Step& step = attempt->steps[attempt->next_step];
  MDBS_CHECK(step.is_ser && step.site == site)
      << "ser release does not match current step of " << attempt_id;
  PerformStep(attempt, step,
              [this, attempt_id, site](const Status& status, int64_t) {
                Attempt* done = FindAttempt(attempt_id);
                if (done == nullptr || done->failed) return;
                if (!status.ok()) {
                  FailAttempt(attempt_id, status, /*scheme_demanded=*/false);
                  return;
                }
                // The server inserts the ack into QUEUE (paper §4).
                gtm2_->Enqueue(QueueOp::Ack(attempt_id, site));
              });
}

void Gtm1::OnAckForwarded(GlobalTxnId attempt_id, SiteId) {
  // Deferred: forward_ack fires inside the GTM2 pump.
  loop_->Schedule(0, [this, attempt_id]() {
    Attempt* attempt = FindAttempt(attempt_id);
    if (attempt == nullptr || attempt->failed) return;
    ++attempt->next_step;
    AdvanceStep(attempt_id);
  });
}

void Gtm1::PerformStep(Attempt* attempt, const Step& step,
                       SiteGateway::OpCallback done) {
  GlobalTxnId attempt_id = attempt->id;
  if (metrics_ != nullptr) {
    // The interval from here to the response is a site round trip; Begin is
    // synchronous at the site, so its whole round trip is network time,
    // while data/ticket round trips are split at EndRoundTrip using the
    // site-measured busy slice.
    obs::TxnPhase phase = step.kind == Step::Kind::kTicket
                              ? obs::TxnPhase::kTicket
                          : step.kind == Step::Kind::kBegin
                              ? obs::TxnPhase::kNetwork
                              : obs::TxnPhase::kSiteExec;
    metrics_->Transition(attempt->job->id, phase);
  }
  switch (step.kind) {
    case Step::Kind::kBegin: {
      TxnId sub_id = TxnId(next_txn_id_++);
      attempt->sub_ids[step.site] = sub_id;
      attempt->begun_sites.push_back(step.site);
      gateway_->Begin(step.site, sub_id, attempt_id,
                      [done](const Status& status) { done(status, 0); });
      return;
    }
    case Step::Kind::kTicket: {
      // The paper's take-a-ticket: read the ticket, write back the
      // incremented value. The read half is load-bearing — a blind ticket
      // write would let a backward-validating protocol (OCC checks only
      // read sets) commit two ticket writers in either order, silently
      // inverting the serialization order the ticket exists to pin.
      SiteId site = step.site;
      TxnId sub_id = attempt->sub_ids.at(site);
      gateway_->Submit(
          site, sub_id, DataOp::Read(kTicketItem),
          WrapRoundTrip(
              attempt_id, sub_id,
              [this, attempt_id, site, sub_id, done = std::move(done)](
                  const Status& status, int64_t value) mutable {
                if (!status.ok()) {
                  done(status, 0);
                  return;
                }
                Attempt* holder = FindAttempt(attempt_id);
                if (holder == nullptr || holder->failed) return;
                gateway_->Submit(site, sub_id,
                                 DataOp::Write(kTicketItem, value + 1),
                                 WrapRoundTrip(attempt_id, sub_id,
                                               std::move(done)));
              }));
      return;
    }
    case Step::Kind::kData: {
      const GlobalOp& global_op = attempt->job->spec.ops[step.spec_index];
      DataOp op = global_op.op;
      if (op.type == OpType::kWrite && global_op.value_fn != nullptr) {
        op.value = global_op.value_fn(attempt->reads);
      }
      SiteId site = step.site;
      TxnId sub_id = attempt->sub_ids.at(site);
      gateway_->Submit(
          site, sub_id, op,
          WrapRoundTrip(attempt_id, sub_id,
                        [this, attempt_id, site, op, done = std::move(done)](
                            const Status& status, int64_t value) {
                          Attempt* reader = FindAttempt(attempt_id);
                          if (reader != nullptr && status.ok() &&
                              op.type == OpType::kRead) {
                            reader->reads[{site, op.item}] = value;
                          }
                          done(status, value);
                        }));
      return;
    }
  }
}

void Gtm1::OnValidatePassed(GlobalTxnId attempt_id) {
  Attempt* attempt = FindAttempt(attempt_id);
  if (attempt == nullptr || attempt->failed) return;
  attempt->committing = true;
  CommitNextSite(attempt_id, 0);
}

void Gtm1::CommitNextSite(GlobalTxnId attempt_id, size_t index) {
  Attempt* attempt = FindAttempt(attempt_id);
  if (attempt == nullptr || attempt->failed) return;
  if (index == attempt->begun_sites.size()) {
    // Fully committed.
    gtm2_->Enqueue(QueueOp::Fin(attempt_id));
    Job* job = attempt->job;
    ++stats_.committed;
    if (metrics_ != nullptr) {
      metrics_->AttemptEnded(attempt_id);
      metrics_->TxnFinished(job->id, /*committed=*/true);
    }
    if (trace_ != nullptr) {
      trace_->Record(obs::TraceEventKind::kTxnCommit, attempt_id.value(), -1,
                     job->id, job->attempts);
    }
    GlobalTxnResult result;
    result.status = Status::OK();
    result.attempts = job->attempts;
    result.submit_time = job->submit_time;
    result.finish_time = loop_->now();
    result.reads = std::move(attempt->reads);
    attempts_.erase(attempt_id);
    FinishJob(job, std::move(result));
    return;
  }
  SiteId site = attempt->begun_sites[index];
  TxnId sub_id = attempt->sub_ids.at(site);
  if (metrics_ != nullptr) {
    metrics_->Transition(attempt->job->id, obs::TxnPhase::kSiteExec);
  }
  gateway_->Commit(
      site, sub_id, [this, attempt_id, index, sub_id](const Status& status) {
        Attempt* committing = FindAttempt(attempt_id);
        if (committing == nullptr || committing->failed) return;
        if (metrics_ != nullptr) {
          metrics_->EndRoundTrip(committing->job->id, sub_id);
        }
        if (status.ok()) {
          CommitNextSite(attempt_id, index + 1);
          return;
        }
        // Local validation failed at commit (OCC).
        if (index == 0) {
          // Nothing committed yet: the attempt is cleanly retryable.
          committing->committing = false;
          FailAttempt(attempt_id, status, /*scheme_demanded=*/false);
          return;
        }
        // Some subtransactions already committed: atomic commitment is out
        // of the paper's scope, so report a partial commit and do not retry
        // (a retry would double-apply the committed sites' effects).
        ++stats_.partial_commits;
        Job* job = committing->job;
        if (trace_ != nullptr) {
          trace_->Record(obs::TraceEventKind::kTxnFail, attempt_id.value(),
                         -1, job->id, job->attempts, "partial_commit");
        }
        // Abort the rest.
        for (size_t i = index + 1; i < committing->begun_sites.size(); ++i) {
          SiteId rest = committing->begun_sites[i];
          gateway_->Abort(rest, committing->sub_ids.at(rest),
                          [](const Status&) {});
        }
        gtm2_->AbortCleanup(attempt_id);
        if (metrics_ != nullptr) {
          metrics_->AttemptEnded(attempt_id);
          metrics_->TxnFinished(job->id, /*committed=*/false);
        }
        GlobalTxnResult result;
        result.status =
            Status::TransactionAborted("partial commit: " + status.message());
        result.attempts = job->attempts;
        result.submit_time = job->submit_time;
        result.finish_time = loop_->now();
        result.retry_safe = false;
        attempts_.erase(attempt_id);
        ++stats_.failed;
        FinishJob(job, std::move(result));
      });
}

void Gtm1::FailAttempt(GlobalTxnId attempt_id, const Status& reason,
                       bool scheme_demanded) {
  Attempt* attempt = FindAttempt(attempt_id);
  if (attempt == nullptr || attempt->failed) return;
  attempt->failed = true;
  ++stats_.aborted_attempts;
  if (scheme_demanded) ++stats_.scheme_aborts;
  if (trace_ != nullptr) {
    const std::string& msg = reason.message();
    bool by_site_down =
        msg.size() > 5 && msg.compare(msg.size() - 5, 5, " down") == 0;
    const char* why = scheme_demanded          ? "scheme"
                      : msg == "attempt timed out" ? "timeout"
                      : by_site_down               ? "site_down"
                                                   : "site";
    trace_->Record(obs::TraceEventKind::kAttemptAbort, attempt_id.value(), -1,
                   attempt->job->id, attempt->job->attempts, why);
  }

  // Abort every begun subtransaction (idempotent at the sites).
  for (SiteId site : attempt->begun_sites) {
    gateway_->Abort(site, attempt->sub_ids.at(site), [](const Status&) {});
  }
  gtm2_->AbortCleanup(attempt_id);

  Job* job = attempt->job;
  attempts_.erase(attempt_id);
  if (metrics_ != nullptr) {
    metrics_->AttemptAborted(job->id);
    metrics_->AttemptEnded(attempt_id);
  }
  if (job->attempts >= config_.max_attempts) {
    ++stats_.failed;
    if (trace_ != nullptr) {
      trace_->Record(obs::TraceEventKind::kTxnFail, attempt_id.value(), -1,
                     job->id, job->attempts, "gave_up");
    }
    if (metrics_ != nullptr) metrics_->TxnFinished(job->id, false);
    GlobalTxnResult result;
    result.status = Status::TransactionAborted(
        "gave up after " + std::to_string(job->attempts) +
        " attempts; last: " + reason.ToString());
    result.attempts = job->attempts;
    result.submit_time = job->submit_time;
    result.finish_time = loop_->now();
    FinishJob(job, std::move(result));
    return;
  }
  // Randomized backoff, then a fresh attempt (or a park, if a site the job
  // needs was quarantined in the meantime).
  int64_t job_id = job->id;
  if (metrics_ != nullptr) {
    metrics_->Transition(job_id, obs::TxnPhase::kBackoff);
  }
  loop_->Schedule(RetryDelay(*job), [this, job_id]() { RetryJob(job_id); });
}

sim::Time Gtm1::RetryDelay(const Job& job) {
  // Doubles per failed attempt, capped; jitter keeps retries of transactions
  // aborted together from colliding again. At one failure this reduces to
  // backoff + U[0, backoff], the original uniform scheme.
  sim::Time base = config_.retry_backoff;
  for (int i = 1; i < job.attempts && base < config_.retry_backoff_cap; ++i) {
    base *= 2;
  }
  base = std::min(base, std::max(config_.retry_backoff_cap, config_.retry_backoff));
  return base + static_cast<sim::Time>(
                    rng_.NextBelow(static_cast<uint64_t>(base) + 1));
}

void Gtm1::RetryJob(int64_t job_id) {
  Job* job = FindJob(job_id);
  if (job == nullptr || job->parked) return;
  if (TouchesQuarantine(*job)) {
    ParkJob(job);
    return;
  }
  StartAttempt(job);
}

void Gtm1::ParkJob(Job* job) {
  job->parked = true;
  int64_t epoch = ++job->park_epoch;
  ++stats_.parked;
  if (metrics_ != nullptr) {
    metrics_->Transition(job->id, obs::TxnPhase::kParked);
  }
  if (trace_ != nullptr) {
    trace_->Record(obs::TraceEventKind::kTxnParked, job->id, -1,
                   job->attempts);
  }
  if (config_.quarantine_park_timeout <= 0) return;
  int64_t job_id = job->id;
  loop_->Schedule(config_.quarantine_park_timeout, [this, job_id, epoch]() {
    Job* parked = FindJob(job_id);
    if (parked == nullptr || !parked->parked || parked->park_epoch != epoch) {
      return;
    }
    ++stats_.park_timeouts;
    ++stats_.failed;
    if (trace_ != nullptr) {
      trace_->Record(obs::TraceEventKind::kTxnFail, parked->current_attempt.value(),
                     -1, parked->id, parked->attempts, "park_timeout");
    }
    if (metrics_ != nullptr) metrics_->TxnFinished(parked->id, false);
    GlobalTxnResult result;
    result.status = Status::TransactionAborted(
        "parked waiting for site recovery beyond the park timeout");
    result.attempts = parked->attempts;
    result.submit_time = parked->submit_time;
    result.finish_time = loop_->now();
    FinishJob(parked, std::move(result));
  });
}

void Gtm1::OnSiteDown(SiteId site) {
  if (!quarantined_.insert(site).second) return;
  if (metrics_ != nullptr) metrics_->SiteDownEvent();
  // Collect first: FailAttempt erases from attempts_.
  std::vector<GlobalTxnId> doomed;
  for (const auto& [id, attempt] : attempts_) {
    if (attempt->failed || attempt->committing) continue;
    const std::vector<SiteId> sites = attempt->job->spec.Sites();
    if (std::find(sites.begin(), sites.end(), site) != sites.end()) {
      doomed.push_back(id);
    }
  }
  for (GlobalTxnId id : doomed) {
    ++stats_.site_down_aborts;
    FailAttempt(id,
                Status::TransactionAborted(
                    "site " + std::to_string(site.value()) + " down"),
                /*scheme_demanded=*/false);
  }
}

void Gtm1::OnSiteUp(SiteId site) {
  if (quarantined_.erase(site) == 0) return;
  for (const std::unique_ptr<Job>& owned : jobs_) {
    Job* job = owned.get();
    if (!job->parked || TouchesQuarantine(*job)) continue;
    job->parked = false;
    ++job->park_epoch;  // Invalidate the park timeout.
    ++stats_.unparked;
    if (trace_ != nullptr) {
      trace_->Record(obs::TraceEventKind::kTxnUnparked, job->id, -1,
                     job->attempts);
    }
    // Jittered resume so a herd of parked transactions doesn't stampede the
    // recovering site; RetryJob re-checks quarantine at fire time.
    int64_t job_id = job->id;
    sim::Time delay = 1 + static_cast<sim::Time>(rng_.NextBelow(
                              static_cast<uint64_t>(config_.retry_backoff) + 1));
    loop_->Schedule(delay, [this, job_id]() { RetryJob(job_id); });
  }
}

bool Gtm1::IsQuarantined(SiteId site) const {
  return quarantined_.count(site) > 0;
}

int64_t Gtm1::ParkedJobs() const {
  int64_t parked = 0;
  for (const std::unique_ptr<Job>& job : jobs_) {
    if (job->parked) ++parked;
  }
  return parked;
}

bool Gtm1::TouchesQuarantine(const Job& job) const {
  if (quarantined_.empty()) return false;
  for (SiteId site : job.spec.Sites()) {
    if (quarantined_.count(site) > 0) return true;
  }
  return false;
}

void Gtm1::FinishJob(Job* job, GlobalTxnResult result) {
  --in_flight_;
  ResultCallback cb = std::move(job->cb);
  auto it = std::find_if(
      jobs_.begin(), jobs_.end(),
      [job](const std::unique_ptr<Job>& owned) { return owned.get() == job; });
  MDBS_CHECK(it != jobs_.end());
  jobs_.erase(it);
  if (cb) cb(result);
}

Gtm1::Attempt* Gtm1::FindAttempt(GlobalTxnId attempt_id) {
  auto it = attempts_.find(attempt_id);
  return it == attempts_.end() ? nullptr : it->second.get();
}

Gtm1::Job* Gtm1::FindJob(int64_t job_id) {
  for (const std::unique_ptr<Job>& job : jobs_) {
    if (job->id == job_id) return job.get();
  }
  return nullptr;
}

}  // namespace mdbs::gtm
