#include "gtm/gtm1.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "gtm/gtm_log.h"

namespace mdbs::gtm {

Gtm1::Gtm1(const Gtm1Config& config, sim::TaskRunner* loop,
           SiteGateway* gateway, uint64_t seed)
    : config_(config), loop_(loop), gateway_(gateway), rng_(seed) {
  Gtm2::Callbacks callbacks;
  // All four callbacks are muted during WAL replay (the live run already
  // performed their side effects) and the deferred ones capture the crash
  // epoch so a pre-crash pump cannot drive post-recovery state.
  callbacks.release_ser = [this](GlobalTxnId txn, SiteId site) {
    if (replaying_) return;
    OnSerReleased(txn, site);
  };
  callbacks.forward_ack = [this](GlobalTxnId txn, SiteId site) {
    if (replaying_) return;
    OnAckForwarded(txn, site);
  };
  callbacks.validate_passed = [this](GlobalTxnId txn) {
    if (replaying_) return;
    // Defer: validate_passed fires inside the GTM2 pump.
    int64_t epoch = epoch_;
    loop_->Schedule(0, [this, txn, epoch]() {
      if (epoch != epoch_) return;
      OnValidatePassed(txn);
    });
  };
  callbacks.abort_txn = [this](GlobalTxnId txn) {
    if (replaying_) return;
    int64_t epoch = epoch_;
    loop_->Schedule(0, [this, txn, epoch]() {
      if (epoch != epoch_) return;
      FailAttempt(txn, Status::TransactionAborted("GTM scheme abort"),
                  /*scheme_demanded=*/true);
    });
  };
  gtm2_ = std::make_unique<Gtm2>(MakeFreshScheme(), std::move(callbacks));
  fence_ = config_.fence != nullptr ? config_.fence
                                    : std::make_shared<FencingToken>();
  fence_held_ = fence_->epoch;
  if (config_.durable) {
    MDBS_CHECK(gtm2_->scheme().SupportsSnapshot())
        << "durable GTM requires a snapshot-capable scheme; "
        << gtm2_->scheme().Name() << " is not (Schemes 0-3 and the "
        << "certified fast path are)";
    wal_device_ = config_.wal_device != nullptr
                      ? config_.wal_device
                      : std::make_shared<storage::MemLogDevice>();
    wal_ = std::make_unique<GtmLogWriter>(wal_device_.get());
    wal_->SetSyncConfig(config_.wal_sync);
  }
  if (config_.standby) {
    MDBS_CHECK(config_.durable) << "a warm standby requires a durable GTM";
    // Passive until Promote(): down (submissions would be buffered, but the
    // facade never routes any here) and permanently "replaying" — shadow
    // GTM2 mutations must neither log nor drive GTM1 callbacks.
    standby_ = true;
    down_ = true;
    replaying_ = true;
    standby_replayer_ = std::make_unique<GtmLogReplayer>();
  }
}

Gtm1::~Gtm1() = default;

std::unique_ptr<Scheme> Gtm1::MakeFreshScheme() const {
  return config_.scheme_factory ? config_.scheme_factory()
                                : MakeScheme(config_.scheme);
}

GtmDurabilityStats Gtm1::durability_stats() const {
  GtmDurabilityStats stats = durability_stats_;
  if (wal_ != nullptr) {
    stats.wal_records = wal_->records_written();
    stats.wal_bytes = wal_->bytes_written();
    stats.wal_syncs = wal_->syncs();
  }
  return stats;
}

GtmStandbyStats Gtm1::standby_stats() const {
  GtmStandbyStats stats = standby_stats_;
  stats.fencing_epoch = fence_->epoch;
  stats.stale_rejections = fence_->stale_rejections;
  return stats;
}

void Gtm1::SetWalShipper(
    std::function<void(int64_t seq, std::vector<uint8_t> frame)> shipper) {
  if (wal_ != nullptr) wal_->SetShipper(std::move(shipper));
}

void Gtm1::LogRecord(const GtmLogRecord& record) {
  if (wal_ == nullptr || replaying_) return;
  wal_->Append(record);
  MaybeScheduleCheckpoint();
}

void Gtm1::EnqueueGtm2(QueueOp op) {
  if (wal_ != nullptr && !replaying_) {
    GtmLogRecord record;
    record.type = GtmLogRecordType::kEnqueue;
    record.code = static_cast<uint8_t>(op.kind);
    record.attempt = op.txn.value();
    record.site = op.site.value();
    record.sites.reserve(op.sites.size());
    for (SiteId site : op.sites) record.sites.push_back(site.value());
    LogRecord(record);
  }
  gtm2_->Enqueue(std::move(op));
  if (gtm2_observer_) gtm2_observer_();
}

void Gtm1::AbortCleanupGtm2(GlobalTxnId txn) {
  if (wal_ != nullptr && !replaying_) {
    GtmLogRecord record;
    record.type = GtmLogRecordType::kAbortCleanup;
    record.attempt = txn.value();
    LogRecord(record);
  }
  gtm2_->AbortCleanup(txn);
  if (gtm2_observer_) gtm2_observer_();
}

void Gtm1::MaybeScheduleCheckpoint() {
  if (config_.checkpoint_interval <= 0 || checkpoint_scheduled_) return;
  if (wal_->records_since_checkpoint() < config_.checkpoint_interval) return;
  // Deferred to a strand-turn boundary, where GTM2's QUEUE is provably
  // empty and the volatile image is exactly WAIT + dead set + scheme DS.
  checkpoint_scheduled_ = true;
  int64_t epoch = epoch_;
  loop_->Schedule(0, [this, epoch]() {
    checkpoint_scheduled_ = false;
    if (epoch != epoch_ || down_) return;
    TakeCheckpoint();
  });
}

void Gtm1::TakeCheckpoint() {
  GtmLogRecord record;
  record.type = GtmLogRecordType::kCheckpoint;
  GtmCheckpoint* cp = &record.checkpoint;
  cp->next_txn_id = next_txn_id_;
  cp->next_attempt_id = next_attempt_id_;
  cp->next_job_id = next_job_id_;
  cp->gtm1_stats = stats_;
  // jobs_ is id-ordered (ids are allocated monotonically at Submit and
  // erasure preserves order).
  for (const std::unique_ptr<Job>& job : jobs_) {
    GtmCheckpoint::JobImage image;
    image.id = job->id;
    image.submit_time = job->submit_time;
    image.attempts = job->attempts;
    image.parked = job->parked;
    if (attempts_.find(job->current_attempt) != attempts_.end()) {
      image.current_attempt = job->current_attempt.value();
    }
    cp->jobs.push_back(image);
  }
  std::vector<const Attempt*> live;
  live.reserve(attempts_.size());
  for (const auto& [id, attempt] : attempts_) live.push_back(attempt.get());
  std::sort(live.begin(), live.end(), [](const Attempt* a, const Attempt* b) {
    return a->id.value() < b->id.value();
  });
  for (const Attempt* attempt : live) {
    GtmCheckpoint::AttemptImage image;
    image.id = attempt->id.value();
    image.job = attempt->job->id;
    image.committing = attempt->committing;
    image.commit_index = static_cast<int64_t>(attempt->commit_next);
    for (SiteId site : attempt->begun_sites) {
      image.subs.emplace_back(site.value(),
                              attempt->sub_ids.at(site).value());
    }
    for (const auto& [key, value] : attempt->reads) {
      image.reads.push_back({key.first.value(), key.second.value(), value});
    }
    cp->attempts.push_back(std::move(image));
  }
  for (SiteId site : quarantined_) cp->quarantined.push_back(site.value());
  std::sort(cp->quarantined.begin(), cp->quarantined.end());
  Gtm2::VolatileImage gtm2_image = gtm2_->SnapshotForCheckpoint();
  cp->wait = std::move(gtm2_image.wait);
  cp->dead_txns = std::move(gtm2_image.dead_txns);
  cp->gtm2_stats = gtm2_image.stats;
  cp->scheme_steps = gtm2_image.scheme_steps;
  cp->scheme_state = std::move(gtm2_image.scheme_state);
  LogRecord(record);
  ++durability_stats_.checkpoints;
}

void Gtm1::EnableTrace(obs::TraceSink* sink) {
  trace_ = sink;
  // A standby's shadow GTM2 stays mute: its mutations mirror events the
  // primary already traced. Promote() re-enables from the stored sink.
  gtm2_->EnableTrace(standby_ ? nullptr : sink);
}

void Gtm1::EnableMetrics(obs::MetricsEngine* engine) {
  metrics_ = engine;
  gtm2_->EnableMetrics(standby_ ? nullptr : engine);
}

SiteGateway::OpCallback Gtm1::WrapRoundTrip(GlobalTxnId attempt_id, TxnId sub,
                                            SiteGateway::OpCallback done) {
  if (metrics_ == nullptr) return done;
  return [this, attempt_id, sub, done = std::move(done)](const Status& status,
                                                         int64_t value) {
    Attempt* attempt = FindAttempt(attempt_id);
    if (attempt != nullptr) metrics_->EndRoundTrip(attempt->job->id, sub);
    done(status, value);
  };
}

void Gtm1::Submit(GlobalTxnSpec spec, ResultCallback cb) {
  MDBS_CHECK(!spec.ops.empty()) << "empty global transaction";
  if (down_) {
    // The GTM is crashed or still replaying: the client's submission rides
    // out the outage in the admission buffer and is admitted, in arrival
    // order, when the recovered GTM resumes.
    ++durability_stats_.buffered_submits;
    pending_submits_.push_back(PendingSubmit{std::move(spec), std::move(cb)});
    return;
  }
  ++stats_.submitted;
  ++in_flight_;
  auto job = std::make_unique<Job>();
  job->id = next_job_id_++;
  job->spec = std::move(spec);
  job->cb = std::move(cb);
  job->submit_time = loop_->now();
  if (trace_ != nullptr) {
    trace_->Record(obs::TraceEventKind::kSubmit, job->id, -1,
                   static_cast<int64_t>(job->spec.Sites().size()));
  }
  if (wal_ != nullptr) {
    GtmLogRecord record;
    record.type = GtmLogRecordType::kSubmit;
    record.job = job->id;
    record.time = job->submit_time;
    LogRecord(record);
  }
  Job* raw = job.get();
  jobs_.push_back(std::move(job));
  if (metrics_ != nullptr) metrics_->TxnSubmitted(raw->id, raw->spec.Sites());
  if (activity_hook_) activity_hook_();
  if (TouchesQuarantine(*raw)) {
    // A needed site is already known-down: don't burn an attempt on it.
    ParkJob(raw);
    return;
  }
  StartAttempt(raw);
}

std::vector<Gtm1::Step> Gtm1::BuildSteps(const GlobalTxnSpec& spec) const {
  std::vector<Step> steps;
  std::vector<SiteId> seen;
  // Last data-op index per site, for the kLastOp serialization point.
  std::unordered_map<SiteId, size_t> last_data_index;
  for (size_t i = 0; i < spec.ops.size(); ++i) {
    last_data_index[spec.ops[i].site] = i;
  }
  // Certified fast path: the ser-op machinery exists to order what the
  // analyzer proved cannot become cyclic, so no step is a ser operation
  // (none routes through GTM2) and no ticket is injected.
  if (config_.certified_fast_path) {
    for (size_t i = 0; i < spec.ops.size(); ++i) {
      SiteId site = spec.ops[i].site;
      if (std::find(seen.begin(), seen.end(), site) == seen.end()) {
        seen.push_back(site);
        steps.push_back(Step{Step::Kind::kBegin, site, 0, false});
      }
      steps.push_back(Step{Step::Kind::kData, site, i, false});
    }
    return steps;
  }
  for (size_t i = 0; i < spec.ops.size(); ++i) {
    SiteId site = spec.ops[i].site;
    SerPointKind ser_point = SerPointKindFor(gateway_->ProtocolAt(site));
    if (std::find(seen.begin(), seen.end(), site) == seen.end()) {
      seen.push_back(site);
      steps.push_back(Step{Step::Kind::kBegin, site, 0,
                           ser_point == SerPointKind::kBegin});
      if (ser_point == SerPointKind::kTicket && !config_.ticket_last) {
        steps.push_back(Step{Step::Kind::kTicket, site, 0, true});
      }
    }
    steps.push_back(Step{Step::Kind::kData, site, i,
                         ser_point == SerPointKind::kLastOp &&
                             last_data_index[site] == i});
    if (ser_point == SerPointKind::kTicket && config_.ticket_last &&
        last_data_index[site] == i) {
      steps.push_back(Step{Step::Kind::kTicket, site, 0, true});
    }
  }
  return steps;
}

void Gtm1::StartAttempt(Job* job) {
  ++job->attempts;
  ++stats_.attempts;
  auto attempt = std::make_unique<Attempt>();
  attempt->id = GlobalTxnId(next_attempt_id_++);
  attempt->job = job;
  attempt->steps = BuildSteps(job->spec);
  job->current_attempt = attempt->id;
  GlobalTxnId attempt_id = attempt->id;
  std::vector<SiteId> sites = job->spec.Sites();
  attempts_[attempt_id] = std::move(attempt);
  if (wal_ != nullptr) {
    GtmLogRecord record;
    record.type = GtmLogRecordType::kAttemptStart;
    record.attempt = attempt_id.value();
    record.job = job->id;
    record.index = job->attempts;
    LogRecord(record);
  }
  if (metrics_ != nullptr) {
    metrics_->AttemptStarted(attempt_id, job->id);
    metrics_->Transition(job->id, obs::TxnPhase::kScheme);
  }
  if (trace_ != nullptr) {
    trace_->Record(obs::TraceEventKind::kAttemptStart, attempt_id.value(), -1,
                   job->id, job->attempts);
  }
  if (config_.certified_fast_path) {
    ++stats_.fast_path_attempts;
    if (trace_ != nullptr) {
      trace_->Record(obs::TraceEventKind::kDowngrade, attempt_id.value(), -1,
                     job->id);
    }
  }

  if (config_.attempt_timeout > 0) {
    int64_t epoch = epoch_;
    loop_->Schedule(config_.attempt_timeout, [this, attempt_id, epoch]() {
      if (epoch != epoch_) return;
      Attempt* timed_out = FindAttempt(attempt_id);
      if (timed_out == nullptr || timed_out->failed ||
          timed_out->committing) {
        return;
      }
      ++stats_.timeouts;
      if (trace_ != nullptr) {
        trace_->Record(obs::TraceEventKind::kAttemptTimeout,
                       attempt_id.value(), -1);
      }
      FailAttempt(attempt_id,
                  Status::TransactionAborted("attempt timed out"),
                  /*scheme_demanded=*/false);
    });
  }

  EnqueueGtm2(QueueOp::Init(attempt_id, std::move(sites)));
  AdvanceStep(attempt_id);
}

void Gtm1::AdvanceStep(GlobalTxnId attempt_id) {
  Attempt* attempt = FindAttempt(attempt_id);
  if (attempt == nullptr || attempt->failed) return;
  if (attempt->next_step == attempt->steps.size()) {
    // All operations acknowledged: pre-commit validation point.
    if (metrics_ != nullptr) {
      metrics_->Transition(attempt->job->id, obs::TxnPhase::kScheme);
    }
    EnqueueGtm2(QueueOp::Validate(attempt_id));
    return;
  }
  const Step& step = attempt->steps[attempt->next_step];
  if (step.is_ser) {
    // Route through GTM2; PerformStep happens when the scheme releases it.
    if (metrics_ != nullptr) {
      metrics_->Transition(attempt->job->id, obs::TxnPhase::kScheme);
    }
    EnqueueGtm2(QueueOp::Ser(attempt_id, step.site));
    return;
  }
  PerformStep(attempt, step,
              [this, attempt_id](const Status& status, int64_t) {
                Attempt* done = FindAttempt(attempt_id);
                if (done == nullptr || done->failed) return;
                if (!status.ok()) {
                  FailAttempt(attempt_id, status, /*scheme_demanded=*/false);
                  return;
                }
                ++done->next_step;
                AdvanceStep(attempt_id);
              });
}

void Gtm1::OnSerReleased(GlobalTxnId attempt_id, SiteId site) {
  Attempt* attempt = FindAttempt(attempt_id);
  if (attempt == nullptr || attempt->failed) return;
  MDBS_CHECK(attempt->next_step < attempt->steps.size());
  const Step& step = attempt->steps[attempt->next_step];
  MDBS_CHECK(step.is_ser && step.site == site)
      << "ser release does not match current step of " << attempt_id;
  PerformStep(attempt, step,
              [this, attempt_id, site](const Status& status, int64_t) {
                Attempt* done = FindAttempt(attempt_id);
                if (done == nullptr || done->failed) return;
                if (!status.ok()) {
                  FailAttempt(attempt_id, status, /*scheme_demanded=*/false);
                  return;
                }
                // The server inserts the ack into QUEUE (paper §4).
                EnqueueGtm2(QueueOp::Ack(attempt_id, site));
              });
}

void Gtm1::OnAckForwarded(GlobalTxnId attempt_id, SiteId) {
  // Deferred: forward_ack fires inside the GTM2 pump.
  int64_t epoch = epoch_;
  loop_->Schedule(0, [this, attempt_id, epoch]() {
    if (epoch != epoch_) return;
    Attempt* attempt = FindAttempt(attempt_id);
    if (attempt == nullptr || attempt->failed) return;
    ++attempt->next_step;
    AdvanceStep(attempt_id);
  });
}

void Gtm1::PerformStep(Attempt* attempt, const Step& step,
                       SiteGateway::OpCallback done) {
  GlobalTxnId attempt_id = attempt->id;
  if (metrics_ != nullptr) {
    // The interval from here to the response is a site round trip; Begin is
    // synchronous at the site, so its whole round trip is network time,
    // while data/ticket round trips are split at EndRoundTrip using the
    // site-measured busy slice.
    obs::TxnPhase phase = step.kind == Step::Kind::kTicket
                              ? obs::TxnPhase::kTicket
                          : step.kind == Step::Kind::kBegin
                              ? obs::TxnPhase::kNetwork
                              : obs::TxnPhase::kSiteExec;
    metrics_->Transition(attempt->job->id, phase);
  }
  switch (step.kind) {
    case Step::Kind::kBegin: {
      TxnId sub_id = TxnId(next_txn_id_++);
      attempt->sub_ids[step.site] = sub_id;
      attempt->begun_sites.push_back(step.site);
      if (wal_ != nullptr) {
        GtmLogRecord record;
        record.type = GtmLogRecordType::kBeginSite;
        record.attempt = attempt_id.value();
        record.site = step.site.value();
        record.sub = sub_id.value();
        LogRecord(record);
      }
      gateway_->Begin(step.site, sub_id, attempt_id,
                      [done](const Status& status) { done(status, 0); });
      return;
    }
    case Step::Kind::kTicket: {
      // The paper's take-a-ticket: read the ticket, write back the
      // incremented value. The read half is load-bearing — a blind ticket
      // write would let a backward-validating protocol (OCC checks only
      // read sets) commit two ticket writers in either order, silently
      // inverting the serialization order the ticket exists to pin.
      SiteId site = step.site;
      TxnId sub_id = attempt->sub_ids.at(site);
      gateway_->Submit(
          site, sub_id, DataOp::Read(kTicketItem),
          WrapRoundTrip(
              attempt_id, sub_id,
              [this, attempt_id, site, sub_id, done = std::move(done)](
                  const Status& status, int64_t value) mutable {
                if (!status.ok()) {
                  done(status, 0);
                  return;
                }
                Attempt* holder = FindAttempt(attempt_id);
                if (holder == nullptr || holder->failed) return;
                gateway_->Submit(site, sub_id,
                                 DataOp::Write(kTicketItem, value + 1),
                                 WrapRoundTrip(attempt_id, sub_id,
                                               std::move(done)));
              }));
      return;
    }
    case Step::Kind::kData: {
      const GlobalOp& global_op = attempt->job->spec.ops[step.spec_index];
      DataOp op = global_op.op;
      if (op.type == OpType::kWrite && global_op.value_fn != nullptr) {
        op.value = global_op.value_fn(attempt->reads);
      }
      SiteId site = step.site;
      TxnId sub_id = attempt->sub_ids.at(site);
      gateway_->Submit(
          site, sub_id, op,
          WrapRoundTrip(attempt_id, sub_id,
                        [this, attempt_id, site, op, done = std::move(done)](
                            const Status& status, int64_t value) {
                          Attempt* reader = FindAttempt(attempt_id);
                          if (reader != nullptr && status.ok() &&
                              op.type == OpType::kRead) {
                            reader->reads[{site, op.item}] = value;
                            if (wal_ != nullptr) {
                              GtmLogRecord record;
                              record.type = GtmLogRecordType::kRead;
                              record.attempt = attempt_id.value();
                              record.site = site.value();
                              record.item = op.item.value();
                              record.value = value;
                              LogRecord(record);
                            }
                          }
                          done(status, value);
                        }));
      return;
    }
  }
}

void Gtm1::OnValidatePassed(GlobalTxnId attempt_id) {
  Attempt* attempt = FindAttempt(attempt_id);
  if (attempt == nullptr || attempt->failed) return;
  attempt->committing = true;
  if (wal_ != nullptr) {
    // Once this record is durable, a crashed GTM forward-rolls the commit
    // fan-out (site commits are idempotent) instead of aborting.
    GtmLogRecord record;
    record.type = GtmLogRecordType::kCommitStart;
    record.attempt = attempt_id.value();
    LogRecord(record);
  }
  CommitNextSite(attempt_id, 0);
}

void Gtm1::CommitNextSite(GlobalTxnId attempt_id, size_t index) {
  Attempt* attempt = FindAttempt(attempt_id);
  if (attempt == nullptr || attempt->failed) return;
  attempt->commit_next = index;
  if (index == attempt->begun_sites.size()) {
    // Fully committed.
    EnqueueGtm2(QueueOp::Fin(attempt_id));
    Job* job = attempt->job;
    ++stats_.committed;
    if (wal_ != nullptr) {
      GtmLogRecord record;
      record.type = GtmLogRecordType::kFinish;
      record.job = job->id;
      record.code = static_cast<uint8_t>(GtmFinishOutcome::kCommitted);
      record.index = job->attempts;
      LogRecord(record);
    }
    if (metrics_ != nullptr) {
      metrics_->AttemptEnded(attempt_id);
      metrics_->TxnFinished(job->id, /*committed=*/true);
    }
    if (trace_ != nullptr) {
      trace_->Record(obs::TraceEventKind::kTxnCommit, attempt_id.value(), -1,
                     job->id, job->attempts);
    }
    GlobalTxnResult result;
    result.status = Status::OK();
    result.attempts = job->attempts;
    result.submit_time = job->submit_time;
    result.finish_time = loop_->now();
    result.reads = std::move(attempt->reads);
    result.gtm_epoch = fence_->epoch;
    attempts_.erase(attempt_id);
    FinishJob(job, std::move(result));
    return;
  }
  SiteId site = attempt->begun_sites[index];
  TxnId sub_id = attempt->sub_ids.at(site);
  if (metrics_ != nullptr) {
    metrics_->Transition(attempt->job->id, obs::TxnPhase::kSiteExec);
  }
  // The epoch guard matters here more than anywhere: after a crash the
  // recovered GTM re-drives this very attempt id from its logged commit
  // index, and a stale pre-crash ack racing the re-driven fan-out would
  // advance the cursor twice. The fence guard is its cross-instance twin:
  // after a failover the promoted standby re-drives the fan-out, and an
  // ack still in flight to the fenced old primary must be rejected (and
  // counted) rather than advance a cursor no longer authoritative.
  int64_t epoch = epoch_;
  int64_t fence = fence_->epoch;
  gateway_->Commit(
      site, sub_id,
      [this, attempt_id, index, sub_id, epoch, fence](const Status& status) {
        if (fence != fence_->epoch) {
          ++fence_->stale_rejections;
          return;
        }
        if (epoch != epoch_) return;
        Attempt* committing = FindAttempt(attempt_id);
        if (committing == nullptr || committing->failed) return;
        if (metrics_ != nullptr) {
          metrics_->EndRoundTrip(committing->job->id, sub_id);
        }
        if (status.ok()) {
          if (wal_ != nullptr) {
            GtmLogRecord record;
            record.type = GtmLogRecordType::kCommitSite;
            record.attempt = attempt_id.value();
            record.index = static_cast<int64_t>(index);
            LogRecord(record);
          }
          CommitNextSite(attempt_id, index + 1);
          return;
        }
        // Local validation failed at commit (OCC).
        if (index == 0) {
          // Nothing committed yet: the attempt is cleanly retryable.
          committing->committing = false;
          FailAttempt(attempt_id, status, /*scheme_demanded=*/false);
          return;
        }
        // Some subtransactions already committed: atomic commitment is out
        // of the paper's scope, so report a partial commit and do not retry
        // (a retry would double-apply the committed sites' effects).
        ++stats_.partial_commits;
        Job* job = committing->job;
        if (trace_ != nullptr) {
          trace_->Record(obs::TraceEventKind::kTxnFail, attempt_id.value(),
                         -1, job->id, job->attempts, "partial_commit");
        }
        // Abort the rest.
        for (size_t i = index + 1; i < committing->begun_sites.size(); ++i) {
          SiteId rest = committing->begun_sites[i];
          gateway_->Abort(rest, committing->sub_ids.at(rest),
                          [](const Status&) {});
        }
        AbortCleanupGtm2(attempt_id);
        if (wal_ != nullptr) {
          GtmLogRecord record;
          record.type = GtmLogRecordType::kFinish;
          record.job = job->id;
          record.code = static_cast<uint8_t>(GtmFinishOutcome::kPartial);
          record.index = job->attempts;
          LogRecord(record);
        }
        if (metrics_ != nullptr) {
          metrics_->AttemptEnded(attempt_id);
          metrics_->TxnFinished(job->id, /*committed=*/false);
        }
        GlobalTxnResult result;
        result.status =
            Status::TransactionAborted("partial commit: " + status.message());
        result.attempts = job->attempts;
        result.submit_time = job->submit_time;
        result.finish_time = loop_->now();
        result.retry_safe = false;
        result.gtm_epoch = fence_->epoch;
        attempts_.erase(attempt_id);
        ++stats_.failed;
        FinishJob(job, std::move(result));
      });
}

void Gtm1::FailAttempt(GlobalTxnId attempt_id, const Status& reason,
                       bool scheme_demanded) {
  Attempt* attempt = FindAttempt(attempt_id);
  if (attempt == nullptr || attempt->failed) return;
  attempt->failed = true;
  ++stats_.aborted_attempts;
  if (scheme_demanded) ++stats_.scheme_aborts;
  const std::string& msg = reason.message();
  bool by_timeout = msg == "attempt timed out";
  bool by_site_down =
      msg.size() > 5 && msg.compare(msg.size() - 5, 5, " down") == 0;
  if (trace_ != nullptr) {
    const char* why = scheme_demanded ? "scheme"
                      : by_timeout    ? "timeout"
                      : by_site_down  ? "site_down"
                                      : "site";
    trace_->Record(obs::TraceEventKind::kAttemptAbort, attempt_id.value(), -1,
                   attempt->job->id, attempt->job->attempts, why);
  }
  if (wal_ != nullptr) {
    GtmLogRecord record;
    record.type = GtmLogRecordType::kAttemptFail;
    record.attempt = attempt_id.value();
    record.code =
        static_cast<uint8_t>(scheme_demanded ? GtmAttemptFailReason::kScheme
                             : by_timeout    ? GtmAttemptFailReason::kTimeout
                             : by_site_down  ? GtmAttemptFailReason::kSiteDown
                                             : GtmAttemptFailReason::kSite);
    LogRecord(record);
  }

  // Abort every begun subtransaction (idempotent at the sites).
  for (SiteId site : attempt->begun_sites) {
    gateway_->Abort(site, attempt->sub_ids.at(site), [](const Status&) {});
  }
  AbortCleanupGtm2(attempt_id);

  Job* job = attempt->job;
  attempts_.erase(attempt_id);
  if (metrics_ != nullptr) {
    metrics_->AttemptAborted(job->id);
    metrics_->AttemptEnded(attempt_id);
  }
  if (job->attempts >= config_.max_attempts) {
    ++stats_.failed;
    if (wal_ != nullptr) {
      GtmLogRecord record;
      record.type = GtmLogRecordType::kFinish;
      record.job = job->id;
      record.code = static_cast<uint8_t>(GtmFinishOutcome::kGaveUp);
      record.index = job->attempts;
      LogRecord(record);
    }
    if (trace_ != nullptr) {
      trace_->Record(obs::TraceEventKind::kTxnFail, attempt_id.value(), -1,
                     job->id, job->attempts, "gave_up");
    }
    if (metrics_ != nullptr) metrics_->TxnFinished(job->id, false);
    GlobalTxnResult result;
    result.status = Status::TransactionAborted(
        "gave up after " + std::to_string(job->attempts) +
        " attempts; last: " + reason.ToString());
    result.attempts = job->attempts;
    result.submit_time = job->submit_time;
    result.finish_time = loop_->now();
    result.gtm_epoch = fence_->epoch;
    FinishJob(job, std::move(result));
    return;
  }
  // Randomized backoff, then a fresh attempt (or a park, if a site the job
  // needs was quarantined in the meantime).
  int64_t job_id = job->id;
  if (metrics_ != nullptr) {
    metrics_->Transition(job_id, obs::TxnPhase::kBackoff);
  }
  int64_t epoch = epoch_;
  loop_->Schedule(RetryDelay(*job), [this, job_id, epoch]() {
    if (epoch != epoch_) return;
    RetryJob(job_id);
  });
}

sim::Time Gtm1::RetryDelay(const Job& job) {
  // Doubles per failed attempt, capped; jitter keeps retries of transactions
  // aborted together from colliding again. At one failure this reduces to
  // backoff + U[0, backoff], the original uniform scheme.
  sim::Time base = config_.retry_backoff;
  for (int i = 1; i < job.attempts && base < config_.retry_backoff_cap; ++i) {
    base *= 2;
  }
  base = std::min(base, std::max(config_.retry_backoff_cap, config_.retry_backoff));
  return base + static_cast<sim::Time>(
                    rng_.NextBelow(static_cast<uint64_t>(base) + 1));
}

void Gtm1::RetryJob(int64_t job_id) {
  Job* job = FindJob(job_id);
  if (job == nullptr || job->parked) return;
  if (TouchesQuarantine(*job)) {
    ParkJob(job);
    return;
  }
  StartAttempt(job);
}

void Gtm1::ParkJob(Job* job) {
  job->parked = true;
  ++job->park_epoch;
  ++stats_.parked;
  if (wal_ != nullptr) {
    GtmLogRecord record;
    record.type = GtmLogRecordType::kPark;
    record.job = job->id;
    LogRecord(record);
  }
  if (metrics_ != nullptr) {
    metrics_->Transition(job->id, obs::TxnPhase::kParked);
  }
  if (trace_ != nullptr) {
    trace_->Record(obs::TraceEventKind::kTxnParked, job->id, -1,
                   job->attempts);
  }
  ArmParkTimeout(job);
}

void Gtm1::ArmParkTimeout(Job* job) {
  if (config_.quarantine_park_timeout <= 0) return;
  int64_t job_id = job->id;
  int64_t park_epoch = job->park_epoch;
  int64_t epoch = epoch_;
  loop_->Schedule(config_.quarantine_park_timeout,
                  [this, job_id, park_epoch, epoch]() {
    if (epoch != epoch_) return;
    Job* parked = FindJob(job_id);
    if (parked == nullptr || !parked->parked ||
        parked->park_epoch != park_epoch) {
      return;
    }
    ++stats_.park_timeouts;
    ++stats_.failed;
    if (wal_ != nullptr) {
      GtmLogRecord record;
      record.type = GtmLogRecordType::kFinish;
      record.job = parked->id;
      record.code = static_cast<uint8_t>(GtmFinishOutcome::kParkTimeout);
      record.index = parked->attempts;
      LogRecord(record);
    }
    if (trace_ != nullptr) {
      trace_->Record(obs::TraceEventKind::kTxnFail, parked->current_attempt.value(),
                     -1, parked->id, parked->attempts, "park_timeout");
    }
    if (metrics_ != nullptr) metrics_->TxnFinished(parked->id, false);
    GlobalTxnResult result;
    result.status = Status::TransactionAborted(
        "parked waiting for site recovery beyond the park timeout");
    result.attempts = parked->attempts;
    result.submit_time = parked->submit_time;
    result.finish_time = loop_->now();
    result.gtm_epoch = fence_->epoch;
    FinishJob(parked, std::move(result));
  });
}

void Gtm1::OnSiteDown(SiteId site) {
  // While the GTM itself is down, site churn is invisible to it; Recover()
  // takes the health monitor's current view instead of replaying this churn.
  if (down_) return;
  if (!quarantined_.insert(site).second) return;
  if (wal_ != nullptr) {
    GtmLogRecord record;
    record.type = GtmLogRecordType::kSiteDown;
    record.site = site.value();
    LogRecord(record);
  }
  if (metrics_ != nullptr) metrics_->SiteDownEvent();
  // Collect first: FailAttempt erases from attempts_.
  std::vector<GlobalTxnId> doomed;
  for (const auto& [id, attempt] : attempts_) {
    if (attempt->failed || attempt->committing) continue;
    const std::vector<SiteId> sites = attempt->job->spec.Sites();
    if (std::find(sites.begin(), sites.end(), site) != sites.end()) {
      doomed.push_back(id);
    }
  }
  for (GlobalTxnId id : doomed) {
    ++stats_.site_down_aborts;
    FailAttempt(id,
                Status::TransactionAborted(
                    "site " + std::to_string(site.value()) + " down"),
                /*scheme_demanded=*/false);
  }
}

void Gtm1::OnSiteUp(SiteId site) {
  if (down_) return;
  if (quarantined_.erase(site) == 0) return;
  if (wal_ != nullptr) {
    GtmLogRecord record;
    record.type = GtmLogRecordType::kSiteUp;
    record.site = site.value();
    LogRecord(record);
  }
  for (const std::unique_ptr<Job>& owned : jobs_) {
    Job* job = owned.get();
    if (!job->parked || TouchesQuarantine(*job)) continue;
    job->parked = false;
    ++job->park_epoch;  // Invalidate the park timeout.
    ++stats_.unparked;
    if (wal_ != nullptr) {
      GtmLogRecord record;
      record.type = GtmLogRecordType::kUnpark;
      record.job = job->id;
      LogRecord(record);
    }
    if (trace_ != nullptr) {
      trace_->Record(obs::TraceEventKind::kTxnUnparked, job->id, -1,
                     job->attempts);
    }
    // Jittered resume so a herd of parked transactions doesn't stampede the
    // recovering site; RetryJob re-checks quarantine at fire time.
    int64_t job_id = job->id;
    sim::Time delay = 1 + static_cast<sim::Time>(rng_.NextBelow(
                              static_cast<uint64_t>(config_.retry_backoff) + 1));
    int64_t epoch = epoch_;
    loop_->Schedule(delay, [this, job_id, epoch]() {
      if (epoch != epoch_) return;
      RetryJob(job_id);
    });
  }
}

bool Gtm1::IsQuarantined(SiteId site) const {
  return quarantined_.count(site) > 0;
}

int64_t Gtm1::ParkedJobs() const {
  int64_t parked = 0;
  for (const std::unique_ptr<Job>& job : jobs_) {
    if (job->parked) ++parked;
  }
  return parked;
}

bool Gtm1::TouchesQuarantine(const Job& job) const {
  if (quarantined_.empty()) return false;
  for (SiteId site : job.spec.Sites()) {
    if (quarantined_.count(site) > 0) return true;
  }
  return false;
}

void Gtm1::FinishJob(Job* job, GlobalTxnResult result) {
  --in_flight_;
  ResultCallback cb = std::move(job->cb);
  auto it = std::find_if(
      jobs_.begin(), jobs_.end(),
      [job](const std::unique_ptr<Job>& owned) { return owned.get() == job; });
  MDBS_CHECK(it != jobs_.end());
  jobs_.erase(it);
  if (cb) cb(result);
}

Gtm1::Attempt* Gtm1::FindAttempt(GlobalTxnId attempt_id) {
  auto it = attempts_.find(attempt_id);
  return it == attempts_.end() ? nullptr : it->second.get();
}

Gtm1::Job* Gtm1::FindJob(int64_t job_id) {
  for (const std::unique_ptr<Job>& job : jobs_) {
    if (job->id == job_id) return job.get();
  }
  return nullptr;
}

void Gtm1::Crash() {
  MDBS_CHECK(config_.durable) << "Crash() requires Gtm1Config::durable";
  if (down_) return;
  down_ = true;
  // Invalidate every scheduled lambda and in-flight gateway callback: a
  // pre-crash timer or site ack must not drive post-recovery state.
  ++epoch_;
  checkpoint_scheduled_ = false;
  ++durability_stats_.crashes;
  if (trace_ != nullptr) {
    trace_->Record(obs::TraceEventKind::kGtmCrash, -1, -1,
                   static_cast<int64_t>(attempts_.size()),
                   static_cast<int64_t>(jobs_.size()));
  }
  if (metrics_ != nullptr) {
    for (const auto& [id, attempt] : attempts_) metrics_->AttemptEnded(id);
    for (const std::unique_ptr<Job>& job : jobs_) {
      metrics_->Transition(job->id, obs::TxnPhase::kRecovery);
    }
  }
  // The clients outlive the GTM: model them retaining their specs, result
  // callbacks and submit times across the outage (closures are not
  // serializable, so the log cannot carry them).
  client_registry_.clear();
  for (std::unique_ptr<Job>& job : jobs_) {
    ClientEntry entry;
    entry.spec = std::move(job->spec);
    entry.cb = std::move(job->cb);
    entry.submit_time = job->submit_time;
    client_registry_.emplace(job->id, std::move(entry));
  }
  // in_flight_ survives: the jobs are not finished, merely forgotten until
  // Recover() rebuilds them from the log.
  attempts_.clear();
  jobs_.clear();
  quarantined_.clear();
  stats_ = Gtm1Stats{};
  gtm2_->ResetForRecovery(MakeFreshScheme());
}

void Gtm1::Recover(const std::vector<SiteId>& down_sites) {
  if (!down_ || recovering_) return;
  if (fence_held_ != fence_->epoch) {
    // A standby was promoted past this instance while it was down: it is
    // fenced out and must stay dead — recovering would put two GTMs in
    // charge of the same jobs (split brain). Counted, refused.
    ++fence_->stale_rejections;
    return;
  }
  recovering_ = true;
  ++durability_stats_.recoveries;

  GtmLogScan scan;
  Status read = ReadGtmLog(*wal_device_, &scan);
  MDBS_CHECK(read.ok()) << read.message();
  if (scan.torn_tail) {
    wal_device_->Truncate(static_cast<int64_t>(scan.valid_bytes));
  }
  GtmLogAnalysis analysis;
  Status analyzed = AnalyzeGtmLog(scan.records, &analysis);
  MDBS_CHECK(analyzed.ok()) << analyzed.message();
  int64_t replayed_records = static_cast<int64_t>(scan.records.size());
  durability_stats_.replayed_records += replayed_records;
  durability_stats_.replayed_bytes += static_cast<int64_t>(scan.valid_bytes);

  // Rebuild GTM2 (WAIT, dead set, scheme DS) by restoring the latest
  // checkpoint and replaying the logged mutation suffix, observability
  // muted so replay emits no trace events or metrics.
  replaying_ = true;
  gtm2_->EnableTrace(nullptr);
  gtm2_->EnableMetrics(nullptr);
  if (analysis.checkpoint_index != GtmLogAnalysis::kNoCheckpoint) {
    const GtmCheckpoint& cp =
        scan.records[analysis.checkpoint_index].checkpoint;
    Gtm2::VolatileImage image;
    image.wait = cp.wait;
    image.dead_txns = cp.dead_txns;
    image.stats = cp.gtm2_stats;
    image.scheme_steps = cp.scheme_steps;
    image.scheme_state = cp.scheme_state;
    gtm2_->RestoreFromCheckpoint(image);
  }
  for (size_t index : analysis.gtm2_replay) {
    const GtmLogRecord& record = scan.records[index];
    if (record.type == GtmLogRecordType::kEnqueue) {
      QueueOp op;
      op.kind = static_cast<QueueOpKind>(record.code);
      op.txn = GlobalTxnId(record.attempt);
      op.site = SiteId(record.site);
      op.sites.reserve(record.sites.size());
      for (int64_t site : record.sites) op.sites.emplace_back(site);
      gtm2_->Enqueue(std::move(op));
    } else {
      gtm2_->AbortCleanup(GlobalTxnId(record.attempt));
    }
    ++durability_stats_.replayed_enqueues;
  }
  gtm2_->EnableTrace(trace_);
  gtm2_->EnableMetrics(metrics_);
  replaying_ = false;

  InstallRecoveredState(analysis, down_sites, /*standby_promotion=*/false);

  // Model the replay cost: the GTM stays down for a further base + per-record
  // delay before it resumes driving transactions.
  sim::Time delay =
      config_.recovery_base_time +
      config_.recovery_time_per_record * replayed_records;
  durability_stats_.recovery_ticks += delay;
  int64_t epoch = epoch_;
  loop_->Schedule(delay, [this, epoch, replayed_records]() {
    if (epoch != epoch_) return;
    ResumeAfterRecovery(replayed_records, /*promoted=*/false);
  });
}

void Gtm1::InstallRecoveredState(const GtmLogAnalysis& analysis,
                                 const std::vector<SiteId>& down_sites,
                                 bool standby_promotion) {
  next_txn_id_ = analysis.next_txn_id;
  next_attempt_id_ = analysis.next_attempt_id;
  next_job_id_ = analysis.next_job_id;
  stats_ = analysis.stats;
  if (config_.certified_fast_path) {
    stats_.fast_path_attempts = stats_.attempts;
  }
  // The health monitor's *current* view supersedes the logged quarantine
  // churn: sites went down and came back while the GTM was blind.
  quarantined_.clear();
  for (SiteId site : down_sites) quarantined_.insert(site);

  // Re-attach the clients to the unfinished jobs the log knows about. The
  // two views must agree exactly: a logged job without a client, or a
  // client whose job never reached the log, is a durability bug.
  for (const auto& [job_id, image] : analysis.jobs) {
    auto entry = client_registry_.find(job_id);
    MDBS_CHECK(entry != client_registry_.end())
        << "logged unfinished job " << job_id << " has no attached client";
    auto job = std::make_unique<Job>();
    job->id = image.id;
    job->spec = std::move(entry->second.spec);
    job->cb = std::move(entry->second.cb);
    job->attempts = static_cast<int>(image.attempts);
    job->submit_time = entry->second.submit_time;
    job->parked = image.parked;
    jobs_.push_back(std::move(job));
    client_registry_.erase(entry);
  }
  MDBS_CHECK(client_registry_.empty())
      << "client retained a job the log never admitted";
  MDBS_CHECK(in_flight_ == static_cast<int64_t>(jobs_.size()));

  for (const auto& [attempt_id, image] : analysis.attempts) {
    Job* job = FindJob(image.job);
    MDBS_CHECK(job != nullptr);
    if (image.committing) {
      // Validation passed before the crash: the global commit is decided.
      // Rebuild the attempt at its logged commit cursor; ResumeAfterRecovery
      // forward-rolls the fan-out (site Commit is idempotent).
      auto attempt = std::make_unique<Attempt>();
      attempt->id = GlobalTxnId(attempt_id);
      attempt->job = job;
      attempt->committing = true;
      attempt->commit_next = static_cast<size_t>(image.commit_index);
      for (const auto& [site, sub] : image.subs) {
        attempt->begun_sites.emplace_back(site);
        attempt->sub_ids.emplace(SiteId(site), TxnId(sub));
      }
      for (const auto& read : image.reads) {
        attempt->reads[{SiteId(read[0]), DataItemId(read[1])}] = read[2];
      }
      job->current_attempt = attempt->id;
      attempts_.emplace(attempt->id, std::move(attempt));
    } else {
      // In flight but undecided at the crash: abort the begun
      // sub-transactions (idempotent at the sites) and retry fresh — the
      // safe default for an attempt whose site-side fate is unknown.
      ++stats_.aborted_attempts;
      ++durability_stats_.recovery_aborted_attempts;
      for (const auto& [site, sub] : image.subs) {
        gateway_->Abort(SiteId(site), TxnId(sub), [](const Status&) {});
      }
      if (trace_ != nullptr) {
        trace_->Record(obs::TraceEventKind::kAttemptAbort, attempt_id, -1,
                       job->id, job->attempts, "gtm_crash");
      }
      if (standby_promotion) {
        // The promoted standby's fresh WAL never admitted these attempts:
        // purge the shadow GTM2 directly and let the promotion checkpoint
        // capture the post-abort state instead of logging per-attempt
        // kAttemptFail/kAbortCleanup records.
        gtm2_->AbortCleanup(GlobalTxnId(attempt_id));
        if (gtm2_observer_) gtm2_observer_();
      } else {
        GtmLogRecord record;
        record.type = GtmLogRecordType::kAttemptFail;
        record.attempt = attempt_id;
        record.code = static_cast<uint8_t>(GtmAttemptFailReason::kGtmCrash);
        LogRecord(record);
        AbortCleanupGtm2(GlobalTxnId(attempt_id));
      }
      if (metrics_ != nullptr) metrics_->AttemptAborted(job->id);
      job->current_attempt = GlobalTxnId();
    }
  }
}

void Gtm1::ResumeAfterRecovery(int64_t replayed_records, bool promoted) {
  down_ = false;
  recovering_ = false;
  if (trace_ != nullptr) {
    trace_->Record(promoted ? obs::TraceEventKind::kGtmPromote
                            : obs::TraceEventKind::kGtmRecover,
                   -1, -1, replayed_records,
                   static_cast<int64_t>(jobs_.size()));
  }
  // Collect ids first: CommitNextSite on an attempt whose fan-out already
  // finished every site completes the job synchronously, erasing it from
  // jobs_ under our feet.
  std::vector<int64_t> job_ids;
  job_ids.reserve(jobs_.size());
  for (const std::unique_ptr<Job>& job : jobs_) job_ids.push_back(job->id);
  for (int64_t job_id : job_ids) {
    Job* job = FindJob(job_id);
    if (job == nullptr) continue;
    Attempt* attempt = FindAttempt(job->current_attempt);
    if (attempt != nullptr) {
      // Forward-roll the decided commit from its logged cursor.
      ++durability_stats_.resumed_commits;
      if (metrics_ != nullptr) {
        metrics_->AttemptStarted(attempt->id, job->id);
        metrics_->Transition(job->id, obs::TxnPhase::kSiteExec);
      }
      CommitNextSite(attempt->id, attempt->commit_next);
      continue;
    }
    if (job->parked) {
      if (!TouchesQuarantine(*job)) {
        // The blocking site recovered during the outage: unpark now.
        job->parked = false;
        ++job->park_epoch;
        ++stats_.unparked;
        if (wal_ != nullptr) {
          GtmLogRecord record;
          record.type = GtmLogRecordType::kUnpark;
          record.job = job->id;
          LogRecord(record);
        }
        if (trace_ != nullptr) {
          trace_->Record(obs::TraceEventKind::kTxnUnparked, job->id, -1,
                         job->attempts);
        }
        if (metrics_ != nullptr) {
          metrics_->Transition(job->id, obs::TxnPhase::kBackoff);
        }
        int64_t id = job->id;
        sim::Time delay =
            1 + static_cast<sim::Time>(rng_.NextBelow(
                    static_cast<uint64_t>(config_.retry_backoff) + 1));
        int64_t epoch = epoch_;
        loop_->Schedule(delay, [this, id, epoch]() {
          if (epoch != epoch_) return;
          RetryJob(id);
        });
      } else {
        if (metrics_ != nullptr) {
          metrics_->Transition(job->id, obs::TxnPhase::kParked);
        }
        // The pre-crash park timer died with the crash; the timeout
        // restarts from recovery time.
        ArmParkTimeout(job);
      }
      continue;
    }
    // Backoff / freshly-aborted jobs retry on the normal schedule.
    if (metrics_ != nullptr) {
      metrics_->Transition(job->id, obs::TxnPhase::kBackoff);
    }
    int64_t id = job->id;
    int64_t epoch = epoch_;
    loop_->Schedule(RetryDelay(*job), [this, id, epoch]() {
      if (epoch != epoch_) return;
      RetryJob(id);
    });
  }
  // Admit the submissions that arrived while the GTM was down, in arrival
  // order.
  std::vector<PendingSubmit> buffered = std::move(pending_submits_);
  pending_submits_.clear();
  for (PendingSubmit& pending : buffered) {
    Submit(std::move(pending.spec), std::move(pending.cb));
  }
}

void Gtm1::ReceiveShippedFrame(int64_t seq, std::vector<uint8_t> frame) {
  if (!standby_) {
    // Already promoted: this frame was shipped by the fenced primary's
    // final strand turns and its content is (at most) a prefix of what the
    // promotion already read from the durable log. Count and drop.
    ++standby_stats_.dropped_frames;
    return;
  }
  MDBS_CHECK(seq == standby_stats_.applied_records)
      << "shipped frame out of order: got seq " << seq << ", expected "
      << standby_stats_.applied_records
      << " (the shipping channel must be a FIFO)";
  storage::FrameScan scan;
  Status scanned = storage::ScanFrames(frame, &scan);
  MDBS_CHECK(scanned.ok() && !scan.torn_tail && scan.payloads.size() == 1)
      << "malformed shipped frame at seq " << seq;
  GtmLogRecord record;
  MDBS_CHECK(DecodeGtmLogPayload(frame.data() + scan.payloads[0].first,
                                 scan.payloads[0].second, &record))
      << "undecodable shipped frame at seq " << seq;
  ApplyStandbyRecord(record, static_cast<size_t>(seq));
  ++standby_stats_.applied_records;
  standby_stats_.applied_bytes += static_cast<int64_t>(frame.size());
}

void Gtm1::ApplyStandbyRecord(const GtmLogRecord& record, size_t index) {
  Status applied = standby_replayer_->Apply(record, index);
  MDBS_CHECK(applied.ok()) << applied.message();
  // Mirror the record's GTM2 mutation into the live shadow, so promotion
  // starts from the primary's exact WAIT / dead-set / scheme state with no
  // suffix replay. replaying_ keeps the shadow's callbacks and logging mute.
  switch (record.type) {
    case GtmLogRecordType::kEnqueue: {
      QueueOp op;
      op.kind = static_cast<QueueOpKind>(record.code);
      op.txn = GlobalTxnId(record.attempt);
      op.site = SiteId(record.site);
      op.sites.reserve(record.sites.size());
      for (int64_t site : record.sites) op.sites.emplace_back(site);
      gtm2_->Enqueue(std::move(op));
      break;
    }
    case GtmLogRecordType::kAbortCleanup:
      gtm2_->AbortCleanup(GlobalTxnId(record.attempt));
      break;
    case GtmLogRecordType::kCheckpoint: {
      // The primary checkpointed: snap the shadow to the image, exactly as
      // cold recovery would restart replay from this record.
      const GtmCheckpoint& cp = record.checkpoint;
      gtm2_->ResetForRecovery(MakeFreshScheme());
      Gtm2::VolatileImage image;
      image.wait = cp.wait;
      image.dead_txns = cp.dead_txns;
      image.stats = cp.gtm2_stats;
      image.scheme_steps = cp.scheme_steps;
      image.scheme_state = cp.scheme_state;
      gtm2_->RestoreFromCheckpoint(image);
      break;
    }
    default:
      break;
  }
}

void Gtm1::Promote(Gtm1* primary, const std::vector<SiteId>& down_sites) {
  MDBS_CHECK(standby_) << "Promote() requires a standby GTM";
  MDBS_CHECK(primary->IsDown())
      << "refusing to promote a standby while the primary is live";
  ++standby_stats_.promotions;

  // Adopt the primary's clients: they retained their specs and callbacks
  // across the outage and re-attach to whoever answers — now this GTM. The
  // buffered submissions and in-flight accounting come along.
  client_registry_ = std::move(primary->client_registry_);
  primary->client_registry_.clear();
  in_flight_ = primary->in_flight_;
  primary->in_flight_ = 0;
  for (PendingSubmit& pending : primary->pending_submits_) {
    pending_submits_.push_back(std::move(pending));
  }
  primary->pending_submits_.clear();

  // The primary's durable log is the ground truth; the shipping channel
  // had delivered a prefix of it. Read the log, drop any torn tail, and
  // apply only the unshipped remainder — the lag that bounds this
  // failover's replay work, independent of total log length.
  GtmLogScan scan;
  Status read = ReadGtmLog(*primary->wal_device_, &scan);
  MDBS_CHECK(read.ok()) << read.message();
  if (scan.torn_tail) {
    primary->wal_device_->Truncate(static_cast<int64_t>(scan.valid_bytes));
  }
  int64_t applied = standby_stats_.applied_records;
  MDBS_CHECK(applied <= static_cast<int64_t>(scan.records.size()))
      << "standby applied " << applied << " records but the primary's log "
      << "only holds " << scan.records.size();
  int64_t tail_records = static_cast<int64_t>(scan.records.size()) - applied;
  standby_stats_.lag_records = tail_records;
  standby_stats_.lag_bytes =
      static_cast<int64_t>(scan.valid_bytes) - standby_stats_.applied_bytes;

  // Fence: from here on, anything still acting under the old epoch — the
  // primary's in-flight gateway callbacks, a stray Recover() — is stale.
  ++fence_->epoch;
  fence_held_ = fence_->epoch;
  if (trace_ != nullptr) {
    trace_->Record(obs::TraceEventKind::kGtmPromoteBegin, -1, -1,
                   fence_->epoch, tail_records);
  }

  for (size_t i = static_cast<size_t>(applied); i < scan.records.size(); ++i) {
    ApplyStandbyRecord(scan.records[i], i);
    ++standby_stats_.applied_records;
  }
  durability_stats_.replayed_records += tail_records;
  durability_stats_.replayed_bytes += standby_stats_.lag_bytes;

  // Become the active GTM: the shadow GTM2 goes live (observability on),
  // and the recovered state installs exactly as Recover() would — minus
  // per-attempt logging, since the fresh WAL gets a full checkpoint below.
  standby_ = false;
  recovering_ = true;
  gtm2_->EnableTrace(trace_);
  gtm2_->EnableMetrics(metrics_);
  InstallRecoveredState(standby_replayer_->analysis(), down_sites,
                        /*standby_promotion=*/true);
  replaying_ = false;
  TakeCheckpoint();

  // Unavailability model: the promoted GTM pays for the tail it had to
  // read back, not for the primary's whole log — the warm-standby claim.
  sim::Time delay = config_.recovery_base_time +
                    config_.recovery_time_per_record * tail_records;
  durability_stats_.recovery_ticks += delay;
  int64_t epoch = epoch_;
  loop_->Schedule(delay, [this, epoch, tail_records]() {
    if (epoch != epoch_) return;
    ResumeAfterRecovery(tail_records, /*promoted=*/true);
  });
}

}  // namespace mdbs::gtm
