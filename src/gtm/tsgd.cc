#include "gtm/tsgd.h"

#include <algorithm>
#include <string>

#include "common/logging.h"

namespace mdbs::gtm {

void Tsgd::InsertTxn(GlobalTxnId txn, const std::vector<SiteId>& sites) {
  MDBS_CHECK(!txns_.contains(txn)) << txn << " already in TSGD";
  std::vector<SiteId> sorted = sites;
  std::sort(sorted.begin(), sorted.end());
  txns_[txn] = std::move(sorted);
  for (SiteId site : txns_[txn]) sites_[site].insert(txn);
}

void Tsgd::RemoveTxn(GlobalTxnId txn) {
  auto it = txns_.find(txn);
  if (it == txns_.end()) return;
  for (SiteId site : it->second) {
    auto site_it = sites_.find(site);
    if (site_it != sites_.end()) {
      site_it->second.erase(txn);
      if (site_it->second.empty()) sites_.erase(site_it);
    }
    // Drop dependencies at this site that involve txn, both directions.
    auto drop = [&](auto& primary, auto& mirror, GlobalTxnId key) {
      auto map_it = primary.find(site);
      if (map_it == primary.end()) return;
      auto entry_it = map_it->second.find(key);
      if (entry_it == map_it->second.end()) return;
      for (GlobalTxnId other : entry_it->second) {
        auto mirror_it = mirror.find(site);
        if (mirror_it != mirror.end()) {
          auto other_it = mirror_it->second.find(other);
          if (other_it != mirror_it->second.end()) {
            other_it->second.erase(txn);
            if (other_it->second.empty()) {
              mirror_it->second.erase(other_it);
            }
          }
        }
        --dep_count_;
      }
      map_it->second.erase(entry_it);
    };
    drop(deps_into_, deps_from_, txn);
    drop(deps_from_, deps_into_, txn);
  }
  txns_.erase(it);
}

const std::vector<SiteId>& Tsgd::SitesOf(GlobalTxnId txn) const {
  static const std::vector<SiteId>& empty = *new std::vector<SiteId>();
  auto it = txns_.find(txn);
  return it == txns_.end() ? empty : it->second;
}

const std::set<GlobalTxnId>& Tsgd::TxnsAt(SiteId site) const {
  static const std::set<GlobalTxnId>& empty = *new std::set<GlobalTxnId>();
  auto it = sites_.find(site);
  return it == sites_.end() ? empty : it->second;
}

void Tsgd::AddDependency(SiteId site, GlobalTxnId from, GlobalTxnId to) {
  MDBS_CHECK(from != to) << "self-dependency on " << from;
  if (deps_into_[site][to].insert(from).second) {
    deps_from_[site][from].insert(to);
    ++dep_count_;
  }
}

bool Tsgd::HasDependency(SiteId site, GlobalTxnId from,
                         GlobalTxnId to) const {
  auto site_it = deps_into_.find(site);
  if (site_it == deps_into_.end()) return false;
  auto to_it = site_it->second.find(to);
  return to_it != site_it->second.end() && to_it->second.contains(from);
}

std::vector<GlobalTxnId> Tsgd::DependenciesInto(GlobalTxnId txn,
                                                SiteId site) const {
  auto site_it = deps_into_.find(site);
  if (site_it == deps_into_.end()) return {};
  auto to_it = site_it->second.find(txn);
  if (to_it == site_it->second.end()) return {};
  return std::vector<GlobalTxnId>(to_it->second.begin(),
                                  to_it->second.end());
}

bool Tsgd::HasDependenciesInto(GlobalTxnId txn, SiteId site) const {
  auto site_it = deps_into_.find(site);
  if (site_it == deps_into_.end()) return false;
  auto to_it = site_it->second.find(txn);
  return to_it != site_it->second.end() && !to_it->second.empty();
}

namespace {

/// DFS over the directed dependency relation; returns the cycle as txn ids
/// (first == last) when one is reachable from `node`.
bool DepCycleSearch(
    const std::map<GlobalTxnId, std::set<GlobalTxnId>>& succ,
    GlobalTxnId node, std::set<GlobalTxnId>* done,
    std::set<GlobalTxnId>* on_path, std::vector<GlobalTxnId>* path) {
  if (done->contains(node)) return false;
  on_path->insert(node);
  path->push_back(node);
  auto it = succ.find(node);
  if (it != succ.end()) {
    for (GlobalTxnId next : it->second) {
      if (on_path->contains(next)) {
        path->push_back(next);
        return true;
      }
      if (DepCycleSearch(succ, next, done, on_path, path)) return true;
    }
  }
  on_path->erase(node);
  path->pop_back();
  done->insert(node);
  return false;
}

}  // namespace

Status Tsgd::Validate() const {
  // Adjacency mirror: txns_ <-> sites_.
  for (const auto& [txn, sites] : txns_) {
    for (SiteId site : sites) {
      auto site_it = sites_.find(site);
      if (site_it == sites_.end() || !site_it->second.contains(txn)) {
        return Status::Internal("TSGD: edge (" + ToString(txn) + ", " +
                                ToString(site) +
                                ") missing from the site side");
      }
    }
  }
  for (const auto& [site, txns] : sites_) {
    if (txns.empty()) {
      return Status::Internal("TSGD: empty bucket retained for " +
                              ToString(site));
    }
    for (GlobalTxnId txn : txns) {
      auto txn_it = txns_.find(txn);
      if (txn_it == txns_.end() ||
          !std::binary_search(txn_it->second.begin(), txn_it->second.end(),
                              site)) {
        return Status::Internal("TSGD: edge (" + ToString(txn) + ", " +
                                ToString(site) +
                                ") missing from the txn side");
      }
    }
  }
  // Dependencies: endpoints share the site, mirrors agree, counts match.
  size_t into_count = 0;
  for (const auto& [site, by_to] : deps_into_) {
    for (const auto& [to, froms] : by_to) {
      for (GlobalTxnId from : froms) {
        ++into_count;
        for (GlobalTxnId end : {from, to}) {
          auto site_it = sites_.find(site);
          if (site_it == sites_.end() || !site_it->second.contains(end)) {
            return Status::Internal(
                "TSGD: dependency (" + ToString(from) + ", " +
                ToString(site) + ") -> (" + ToString(site) + ", " +
                ToString(to) + ") involves " + ToString(end) +
                " which has no edge at the site");
          }
        }
        auto from_site_it = deps_from_.find(site);
        if (from_site_it == deps_from_.end() ||
            !from_site_it->second.contains(from) ||
            !from_site_it->second.at(from).contains(to)) {
          return Status::Internal("TSGD: dependency (" + ToString(from) +
                                  " -> " + ToString(to) + " at " +
                                  ToString(site) +
                                  ") missing from deps_from_");
        }
      }
    }
  }
  size_t from_count = 0;
  for (const auto& [site, by_from] : deps_from_) {
    (void)site;
    for (const auto& [from, tos] : by_from) {
      (void)from;
      from_count += tos.size();
    }
  }
  if (into_count != dep_count_ || from_count != dep_count_) {
    return Status::Internal(
        "TSGD: dependency count " + std::to_string(dep_count_) +
        " != into-side " + std::to_string(into_count) + " / from-side " +
        std::to_string(from_count));
  }
  // The directed dependency relation, across all sites, must be acyclic.
  std::map<GlobalTxnId, std::set<GlobalTxnId>> succ;
  for (const auto& [site, by_from] : deps_from_) {
    (void)site;
    for (const auto& [from, tos] : by_from) {
      succ[from].insert(tos.begin(), tos.end());
    }
  }
  std::set<GlobalTxnId> done;
  for (const auto& [node, targets] : succ) {
    (void)targets;
    std::set<GlobalTxnId> on_path;
    std::vector<GlobalTxnId> path;
    if (DepCycleSearch(succ, node, &done, &on_path, &path)) {
      // Trim the lead-in: the cycle starts at the first occurrence of the
      // repeated node.
      auto start = std::find(path.begin(), path.end(), path.back());
      path.erase(path.begin(), start);
      std::string cycle;
      for (GlobalTxnId member : path) {
        if (!cycle.empty()) cycle += " -> ";
        cycle += ToString(member);
      }
      return Status::Internal("TSGD: dependency cycle " + cycle);
    }
  }
  return Status::OK();
}

bool Tsgd::CycleSearch(GlobalTxnId origin, GlobalTxnId current,
                       std::set<GlobalTxnId>* txns_on_path,
                       std::set<SiteId>* sites_on_path) const {
  for (SiteId site : SitesOf(current)) {
    if (sites_on_path->contains(site)) continue;
    for (GlobalTxnId next : TxnsAt(site)) {
      if (next == current) continue;
      // Traversal current -> site -> next means "current serializes before
      // next at site"; the opposing dependency forbids that orientation.
      if (HasDependency(site, next, current)) continue;
      if (next == origin) {
        if (txns_on_path->size() >= 2) return true;
        continue;
      }
      if (txns_on_path->contains(next)) continue;
      txns_on_path->insert(next);
      sites_on_path->insert(site);
      if (CycleSearch(origin, next, txns_on_path, sites_on_path)) {
        return true;
      }
      txns_on_path->erase(next);
      sites_on_path->erase(site);
    }
  }
  return false;
}

bool Tsgd::HasCycleInvolving(GlobalTxnId txn) const {
  if (!HasTxn(txn)) return false;
  std::set<GlobalTxnId> txns_on_path{txn};
  std::set<SiteId> sites_on_path;
  return CycleSearch(txn, txn, &txns_on_path, &sites_on_path);
}

std::vector<Dependency> Tsgd::EliminateCycles(GlobalTxnId origin,
                                              int64_t* steps) const {
  // Figure 4 of the paper, with std::vector-as-stack lists (back == head).
  // The procedure walks the TSGD from `origin` in reverse serialization
  // direction; whenever a walk can close back into `origin` through site u
  // from transaction v, the dependency (v, u) -> (u, origin) is added to Δ,
  // committing v before origin at u and thereby breaking that cycle.
  std::vector<Dependency> delta;
  std::set<std::tuple<int64_t, int64_t, int64_t>> delta_index;  // (u, v, w)
  std::set<std::pair<int64_t, int64_t>> used;                   // (u, w)
  std::unordered_map<GlobalTxnId, std::vector<SiteId>> s_par;
  std::unordered_map<GlobalTxnId, std::vector<GlobalTxnId>> t_par;

  auto in_delta = [&](SiteId u, GlobalTxnId v, GlobalTxnId w) {
    return delta_index.contains({u.value(), v.value(), w.value()});
  };

  GlobalTxnId v = origin;
  int64_t guard = 0;
  for (;;) {
    MDBS_CHECK(++guard < (1 << 26)) << "Eliminate_Cycles runaway";
    // Steps 2-3: look for a traversable pair of edges (v,u),(u,w).
    bool traversed = false;
    for (SiteId u : SitesOf(v)) {
      const auto& stack = s_par[v];
      if (!stack.empty() && stack.back() == u) continue;  // Entry site.
      for (GlobalTxnId w : TxnsAt(u)) {
        if (steps != nullptr) ++*steps;
        if (w == v) continue;
        if (w != origin && used.contains({u.value(), w.value()})) continue;
        if (HasDependency(u, v, w) || in_delta(u, v, w)) continue;
        used.insert({u.value(), w.value()});
        if (w == origin) {
          delta.push_back(Dependency{u, v, origin});
          delta_index.insert({u.value(), v.value(), origin.value()});
          // Stay at v and keep searching.
        } else {
          s_par[w].push_back(u);
          t_par[w].push_back(v);
          v = w;
        }
        traversed = true;
        break;
      }
      if (traversed) break;
    }
    if (traversed) continue;
    // Step 4: backtrack; step 5: done.
    if (v == origin) break;
    GlobalTxnId parent = t_par[v].back();
    t_par[v].pop_back();
    s_par[v].pop_back();
    v = parent;
  }
  return delta;
}


std::vector<GlobalTxnId> Tsgd::Txns() const {
  std::vector<GlobalTxnId> txns;
  txns.reserve(txns_.size());
  for (const auto& [txn, sites] : txns_) txns.push_back(txn);
  std::sort(txns.begin(), txns.end());
  return txns;
}

std::vector<Dependency> Tsgd::AllDependencies() const {
  std::vector<Dependency> deps;
  deps.reserve(dep_count_);
  for (const auto& [site, from_map] : deps_from_) {
    for (const auto& [from, tos] : from_map) {
      for (GlobalTxnId to : tos) deps.push_back(Dependency{site, from, to});
    }
  }
  std::sort(deps.begin(), deps.end(), [](const Dependency& a,
                                         const Dependency& b) {
    if (a.site != b.site) return a.site < b.site;
    if (a.from != b.from) return a.from < b.from;
    return a.to < b.to;
  });
  return deps;
}

}  // namespace mdbs::gtm
