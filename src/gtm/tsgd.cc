#include "gtm/tsgd.h"

#include <algorithm>

#include "common/logging.h"

namespace mdbs::gtm {

void Tsgd::InsertTxn(GlobalTxnId txn, const std::vector<SiteId>& sites) {
  MDBS_CHECK(!txns_.contains(txn)) << txn << " already in TSGD";
  std::vector<SiteId> sorted = sites;
  std::sort(sorted.begin(), sorted.end());
  txns_[txn] = std::move(sorted);
  for (SiteId site : txns_[txn]) sites_[site].insert(txn);
}

void Tsgd::RemoveTxn(GlobalTxnId txn) {
  auto it = txns_.find(txn);
  if (it == txns_.end()) return;
  for (SiteId site : it->second) {
    auto site_it = sites_.find(site);
    if (site_it != sites_.end()) {
      site_it->second.erase(txn);
      if (site_it->second.empty()) sites_.erase(site_it);
    }
    // Drop dependencies at this site that involve txn, both directions.
    auto drop = [&](auto& primary, auto& mirror, GlobalTxnId key) {
      auto map_it = primary.find(site);
      if (map_it == primary.end()) return;
      auto entry_it = map_it->second.find(key);
      if (entry_it == map_it->second.end()) return;
      for (GlobalTxnId other : entry_it->second) {
        auto mirror_it = mirror.find(site);
        if (mirror_it != mirror.end()) {
          auto other_it = mirror_it->second.find(other);
          if (other_it != mirror_it->second.end()) {
            other_it->second.erase(txn);
            if (other_it->second.empty()) {
              mirror_it->second.erase(other_it);
            }
          }
        }
        --dep_count_;
      }
      map_it->second.erase(entry_it);
    };
    drop(deps_into_, deps_from_, txn);
    drop(deps_from_, deps_into_, txn);
  }
  txns_.erase(it);
}

const std::vector<SiteId>& Tsgd::SitesOf(GlobalTxnId txn) const {
  static const std::vector<SiteId>& empty = *new std::vector<SiteId>();
  auto it = txns_.find(txn);
  return it == txns_.end() ? empty : it->second;
}

const std::set<GlobalTxnId>& Tsgd::TxnsAt(SiteId site) const {
  static const std::set<GlobalTxnId>& empty = *new std::set<GlobalTxnId>();
  auto it = sites_.find(site);
  return it == sites_.end() ? empty : it->second;
}

void Tsgd::AddDependency(SiteId site, GlobalTxnId from, GlobalTxnId to) {
  MDBS_CHECK(from != to) << "self-dependency on " << from;
  if (deps_into_[site][to].insert(from).second) {
    deps_from_[site][from].insert(to);
    ++dep_count_;
  }
}

bool Tsgd::HasDependency(SiteId site, GlobalTxnId from,
                         GlobalTxnId to) const {
  auto site_it = deps_into_.find(site);
  if (site_it == deps_into_.end()) return false;
  auto to_it = site_it->second.find(to);
  return to_it != site_it->second.end() && to_it->second.contains(from);
}

std::vector<GlobalTxnId> Tsgd::DependenciesInto(GlobalTxnId txn,
                                                SiteId site) const {
  auto site_it = deps_into_.find(site);
  if (site_it == deps_into_.end()) return {};
  auto to_it = site_it->second.find(txn);
  if (to_it == site_it->second.end()) return {};
  return std::vector<GlobalTxnId>(to_it->second.begin(),
                                  to_it->second.end());
}

bool Tsgd::HasDependenciesInto(GlobalTxnId txn, SiteId site) const {
  auto site_it = deps_into_.find(site);
  if (site_it == deps_into_.end()) return false;
  auto to_it = site_it->second.find(txn);
  return to_it != site_it->second.end() && !to_it->second.empty();
}

bool Tsgd::CycleSearch(GlobalTxnId origin, GlobalTxnId current,
                       std::set<GlobalTxnId>* txns_on_path,
                       std::set<SiteId>* sites_on_path) const {
  for (SiteId site : SitesOf(current)) {
    if (sites_on_path->contains(site)) continue;
    for (GlobalTxnId next : TxnsAt(site)) {
      if (next == current) continue;
      // Traversal current -> site -> next means "current serializes before
      // next at site"; the opposing dependency forbids that orientation.
      if (HasDependency(site, next, current)) continue;
      if (next == origin) {
        if (txns_on_path->size() >= 2) return true;
        continue;
      }
      if (txns_on_path->contains(next)) continue;
      txns_on_path->insert(next);
      sites_on_path->insert(site);
      if (CycleSearch(origin, next, txns_on_path, sites_on_path)) {
        return true;
      }
      txns_on_path->erase(next);
      sites_on_path->erase(site);
    }
  }
  return false;
}

bool Tsgd::HasCycleInvolving(GlobalTxnId txn) const {
  if (!HasTxn(txn)) return false;
  std::set<GlobalTxnId> txns_on_path{txn};
  std::set<SiteId> sites_on_path;
  return CycleSearch(txn, txn, &txns_on_path, &sites_on_path);
}

std::vector<Dependency> Tsgd::EliminateCycles(GlobalTxnId origin,
                                              int64_t* steps) const {
  // Figure 4 of the paper, with std::vector-as-stack lists (back == head).
  // The procedure walks the TSGD from `origin` in reverse serialization
  // direction; whenever a walk can close back into `origin` through site u
  // from transaction v, the dependency (v, u) -> (u, origin) is added to Δ,
  // committing v before origin at u and thereby breaking that cycle.
  std::vector<Dependency> delta;
  std::set<std::tuple<int64_t, int64_t, int64_t>> delta_index;  // (u, v, w)
  std::set<std::pair<int64_t, int64_t>> used;                   // (u, w)
  std::unordered_map<GlobalTxnId, std::vector<SiteId>> s_par;
  std::unordered_map<GlobalTxnId, std::vector<GlobalTxnId>> t_par;

  auto in_delta = [&](SiteId u, GlobalTxnId v, GlobalTxnId w) {
    return delta_index.contains({u.value(), v.value(), w.value()});
  };

  GlobalTxnId v = origin;
  int64_t guard = 0;
  for (;;) {
    MDBS_CHECK(++guard < (1 << 26)) << "Eliminate_Cycles runaway";
    // Steps 2-3: look for a traversable pair of edges (v,u),(u,w).
    bool traversed = false;
    for (SiteId u : SitesOf(v)) {
      const auto& stack = s_par[v];
      if (!stack.empty() && stack.back() == u) continue;  // Entry site.
      for (GlobalTxnId w : TxnsAt(u)) {
        if (steps != nullptr) ++*steps;
        if (w == v) continue;
        if (w != origin && used.contains({u.value(), w.value()})) continue;
        if (HasDependency(u, v, w) || in_delta(u, v, w)) continue;
        used.insert({u.value(), w.value()});
        if (w == origin) {
          delta.push_back(Dependency{u, v, origin});
          delta_index.insert({u.value(), v.value(), origin.value()});
          // Stay at v and keep searching.
        } else {
          s_par[w].push_back(u);
          t_par[w].push_back(v);
          v = w;
        }
        traversed = true;
        break;
      }
      if (traversed) break;
    }
    if (traversed) continue;
    // Step 4: backtrack; step 5: done.
    if (v == origin) break;
    GlobalTxnId parent = t_par[v].back();
    t_par[v].pop_back();
    s_par[v].pop_back();
    v = parent;
  }
  return delta;
}

}  // namespace mdbs::gtm
