#ifndef MDBS_GTM_GLOBAL_TXN_H_
#define MDBS_GTM_GLOBAL_TXN_H_

#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/types.h"

namespace mdbs::gtm {

/// Values read so far by the current attempt of a global transaction,
/// keyed by (site, item). Passed to value functions of later writes.
using ReadContext = std::map<std::pair<SiteId, DataItemId>, int64_t>;

/// One operation of a global transaction, bound to a site. For writes, if
/// `value_fn` is set it computes the value from the reads observed earlier
/// in the same attempt (enabling read-modify-write transactions such as
/// transfers); otherwise `op.value` is written as-is.
struct GlobalOp {
  SiteId site;
  DataOp op;
  std::function<int64_t(const ReadContext&)> value_fn;

  static GlobalOp Read(SiteId site, DataItemId item) {
    return GlobalOp{site, DataOp::Read(item), nullptr};
  }
  static GlobalOp Write(SiteId site, DataItemId item, int64_t value) {
    return GlobalOp{site, DataOp::Write(item, value), nullptr};
  }
  static GlobalOp WriteFn(SiteId site, DataItemId item,
                          std::function<int64_t(const ReadContext&)> fn) {
    return GlobalOp{site, DataOp::Write(item, 0), std::move(fn)};
  }
};

/// A global transaction: a totally ordered list of operations spanning one
/// or more sites (the paper's model — GTM1 submits them strictly one at a
/// time, awaiting each acknowledgement). Begin/ticket/commit operations are
/// synthesized by GTM1; the spec lists only data operations.
struct GlobalTxnSpec {
  std::vector<GlobalOp> ops;

  /// Distinct sites in first-touch order.
  std::vector<SiteId> Sites() const {
    std::vector<SiteId> sites;
    for (const GlobalOp& global_op : ops) {
      bool seen = false;
      for (SiteId site : sites) {
        if (site == global_op.site) seen = true;
      }
      if (!seen) sites.push_back(global_op.site);
    }
    return sites;
  }
};

}  // namespace mdbs::gtm

#endif  // MDBS_GTM_GLOBAL_TXN_H_
