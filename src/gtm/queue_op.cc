#include "gtm/queue_op.h"

#include <sstream>

namespace mdbs::gtm {

const char* QueueOpKindName(QueueOpKind kind) {
  switch (kind) {
    case QueueOpKind::kInit:
      return "init";
    case QueueOpKind::kSer:
      return "ser";
    case QueueOpKind::kAck:
      return "ack";
    case QueueOpKind::kValidate:
      return "validate";
    case QueueOpKind::kFin:
      return "fin";
  }
  return "?";
}

std::string QueueOp::ToString() const {
  std::ostringstream os;
  os << QueueOpKindName(kind) << "(" << mdbs::ToString(txn);
  if (kind == QueueOpKind::kSer || kind == QueueOpKind::kAck) {
    os << "@" << mdbs::ToString(site);
  }
  os << ")";
  return os.str();
}

}  // namespace mdbs::gtm
