#ifndef MDBS_GTM_TSG_H_
#define MDBS_GTM_TSG_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "common/status.h"

namespace mdbs::gtm {

/// The Transaction-Site Graph of Scheme 1 (paper §5): an undirected
/// bipartite graph with transaction nodes and site nodes; the edge
/// (G_i, s_k) exists iff ser_k(G_i) ∈ G̃_i.
class TransactionSiteGraph {
 public:
  /// Inserts `txn` with one edge per site. `txn` must be absent.
  void InsertTxn(GlobalTxnId txn, const std::vector<SiteId>& sites);

  /// Removes `txn` and its edges; no-op when absent.
  void RemoveTxn(GlobalTxnId txn);

  bool HasTxn(GlobalTxnId txn) const { return txns_.contains(txn); }

  /// Sites adjacent to `txn` (empty when absent).
  const std::vector<SiteId>& SitesOf(GlobalTxnId txn) const;

  /// True iff edge (txn, site) lies on a cycle, i.e. `site` and `txn`
  /// remain connected when that edge is removed (BFS). `steps`, when
  /// non-null, accumulates the nodes+edges visited (complexity metering).
  bool EdgeOnCycle(GlobalTxnId txn, SiteId site, int64_t* steps) const;

  size_t TxnCount() const { return txns_.size(); }
  size_t SiteCount() const { return sites_.size(); }
  size_t EdgeCount() const { return edge_count_; }

  /// Transaction nodes in id order — the deterministic iteration the GTM
  /// checkpoint encoding needs (sites_/edge_count_ are derived state, so
  /// txn -> sites is the whole graph).
  std::vector<GlobalTxnId> Txns() const;

  /// Structural self-check (audit layer): the two adjacency maps mirror
  /// each other exactly — every (txn, site) edge appears on both sides, no
  /// txn lists a site twice, no empty site buckets linger, and the edge
  /// count matches. Bipartiteness is structural (txns_ maps only to sites,
  /// sites_ only to txns); this verifies the bookkeeping around it.
  Status Validate() const;

 private:
  std::unordered_map<GlobalTxnId, std::vector<SiteId>> txns_;
  std::unordered_map<SiteId, std::unordered_set<GlobalTxnId>> sites_;
  size_t edge_count_ = 0;
};

}  // namespace mdbs::gtm

#endif  // MDBS_GTM_TSG_H_
