#ifndef MDBS_GTM_SCHEME2_H_
#define MDBS_GTM_SCHEME2_H_

#include <set>
#include <utility>

#include "gtm/scheme.h"
#include "gtm/tsgd.h"

namespace mdbs::gtm {

/// Scheme 2, the transaction-site-graph-with-dependencies scheme (paper
/// §6). Dependencies record — and, for Δ from Eliminate_Cycles, prescribe —
/// the order in which ser operations are processed at each site:
///
///   act(init_i)  inserts G̃_i, adds dependencies from every already-executed
///                ser at its sites, then adds the Δ from Eliminate_Cycles so
///                the TSGD stays acyclic;
///   cond(ser)    waits until every dependency source into the operation has
///                been acked;
///   act(ser)     records dependencies towards every not-yet-executed ser at
///                the site;
///   cond(fin)    waits until no dependencies into the transaction remain
///                (its predecessors finished);
///   act(fin)     removes the transaction.
///
/// Complexity O(n^2 * dav) per transaction (Theorem 6), dominated by
/// Eliminate_Cycles; a *minimal* Δ would be NP-hard (Theorem 7).
class Scheme2 : public ConservativeSchemeBase {
 public:
  SchemeKind kind() const override { return SchemeKind::kScheme2; }
  const char* Name() const override { return "Scheme2-TSGD"; }
  bool IsConservative() const override { return true; }

  Status CheckStructuralInvariants() const override;
  Status AuditSerRelease(GlobalTxnId txn, SiteId site) const override;

  bool SupportsSnapshot() const override { return true; }
  void EncodeState(std::vector<uint8_t>* out) const override;
  bool DecodeState(const uint8_t* data, size_t size) override;

  void ActInit(const QueueOp& op) override;
  Verdict CondSer(GlobalTxnId txn, SiteId site) override;
  void ActSer(GlobalTxnId txn, SiteId site) override;
  void ActAck(GlobalTxnId txn, SiteId site) override;
  Verdict CondFin(GlobalTxnId txn) override;
  void ActFin(GlobalTxnId txn) override;
  void ActAbortCleanup(GlobalTxnId txn) override;

  const Tsgd& tsgd() const { return tsgd_; }

  /// When enabled, every ActInit asserts (exhaustively) that the TSGD has
  /// no cycle involving the new transaction — the Scheme 2 invariant.
  /// Exponential; tests only.
  void set_validate_acyclicity(bool value) { validate_acyclicity_ = value; }

 private:
  /// kDepDrop with the count of incoming dependencies retired with `txn`.
  void TraceDepDrop(GlobalTxnId txn, const char* why);

  bool Executed(GlobalTxnId txn, SiteId site) const {
    return executed_.contains({txn.value(), site.value()});
  }
  bool Acked(GlobalTxnId txn, SiteId site) const {
    return acked_.contains({txn.value(), site.value()});
  }

  Tsgd tsgd_;
  std::set<std::pair<int64_t, int64_t>> executed_;
  std::set<std::pair<int64_t, int64_t>> acked_;
  bool validate_acyclicity_ = false;
};

}  // namespace mdbs::gtm

#endif  // MDBS_GTM_SCHEME2_H_
