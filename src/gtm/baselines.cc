#include "gtm/baselines.h"

#include <algorithm>

#include "common/logging.h"

namespace mdbs::gtm {

// ---------------------------------------------------------------------------
// TicketOptimistic
// ---------------------------------------------------------------------------

void TicketOptimistic::ActInit(const QueueOp& op) {
  AddSteps(1);
  nodes_.try_emplace(op.txn);
}

void TicketOptimistic::ActAck(GlobalTxnId txn, SiteId site) {
  AddSteps(1);
  std::vector<GlobalTxnId>& history = ack_history_[site];
  // Link from the most recent still-live transaction at this site; dead
  // (aborted) entries are skipped so the order chain stays connected.
  for (auto rit = history.rbegin(); rit != history.rend(); ++rit) {
    if (*rit == txn) continue;
    if (nodes_.contains(*rit)) {
      nodes_[*rit].out.insert(txn);
      nodes_[txn].in.insert(*rit);
      break;
    }
  }
  history.push_back(txn);
  if (history.size() > 1024) {
    std::vector<GlobalTxnId> pruned;
    for (GlobalTxnId id : history) {
      if (nodes_.contains(id)) pruned.push_back(id);
    }
    history.swap(pruned);
  }
}

Verdict TicketOptimistic::CondValidate(GlobalTxnId txn) {
  // A transaction on a cycle of the observed per-site serialization orders
  // cannot commit; abort it (the optimistic trade-off).
  AddSteps(1);
  return Reaches(txn, txn) ? Verdict::kAbort : Verdict::kReady;
}

bool TicketOptimistic::Reaches(GlobalTxnId from, GlobalTxnId to) const {
  std::unordered_set<GlobalTxnId> visited;
  std::vector<GlobalTxnId> stack;
  auto it = nodes_.find(from);
  if (it == nodes_.end()) return false;
  for (GlobalTxnId next : it->second.out) stack.push_back(next);
  while (!stack.empty()) {
    GlobalTxnId cur = stack.back();
    stack.pop_back();
    if (cur == to) return true;
    if (!visited.insert(cur).second) continue;
    auto node_it = nodes_.find(cur);
    if (node_it == nodes_.end()) continue;
    for (GlobalTxnId next : node_it->second.out) stack.push_back(next);
  }
  return false;
}

void TicketOptimistic::ActFin(GlobalTxnId txn) {
  auto it = nodes_.find(txn);
  if (it != nodes_.end()) it->second.finished = true;
  CollectGarbage();
}

void TicketOptimistic::ActAbortCleanup(GlobalTxnId txn) {
  // Bridge predecessors to successors before removing: A -> txn -> B
  // implies an A-before-B constraint at txn's sites that must survive (it
  // is conservative across sites, never unsound).
  auto it = nodes_.find(txn);
  if (it != nodes_.end()) {
    for (GlobalTxnId pred : it->second.in) {
      auto pred_it = nodes_.find(pred);
      if (pred_it == nodes_.end()) continue;
      for (GlobalTxnId succ : it->second.out) {
        if (succ == pred) continue;
        auto succ_it = nodes_.find(succ);
        if (succ_it == nodes_.end()) continue;
        pred_it->second.out.insert(succ);
        succ_it->second.in.insert(pred);
      }
    }
  }
  RemoveNode(txn);
}

void TicketOptimistic::RemoveNode(GlobalTxnId txn) {
  auto it = nodes_.find(txn);
  if (it == nodes_.end()) return;
  for (GlobalTxnId succ : it->second.out) {
    auto succ_it = nodes_.find(succ);
    if (succ_it != nodes_.end()) succ_it->second.in.erase(txn);
  }
  for (GlobalTxnId pred : it->second.in) {
    auto pred_it = nodes_.find(pred);
    if (pred_it != nodes_.end()) pred_it->second.out.erase(txn);
  }
  nodes_.erase(it);
}

void TicketOptimistic::CollectGarbage() {
  // Finished nodes with no in-edges can never rejoin a cycle.
  std::vector<GlobalTxnId> removable;
  for (const auto& [txn, node] : nodes_) {
    if (node.finished && node.in.empty()) removable.push_back(txn);
  }
  while (!removable.empty()) {
    GlobalTxnId txn = removable.back();
    removable.pop_back();
    auto it = nodes_.find(txn);
    if (it == nodes_.end()) continue;
    std::vector<GlobalTxnId> successors(it->second.out.begin(),
                                        it->second.out.end());
    RemoveNode(txn);
    for (GlobalTxnId succ : successors) {
      auto succ_it = nodes_.find(succ);
      if (succ_it != nodes_.end() && succ_it->second.finished &&
          succ_it->second.in.empty()) {
        removable.push_back(succ);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// NaiveTwoPhase
// ---------------------------------------------------------------------------

void NaiveTwoPhase::ActInit(const QueueOp& op) {
  AddSteps(1);
  sites_[op.txn] = op.sites;
}

bool NaiveTwoPhase::WouldDeadlock(GlobalTxnId requester, SiteId site) const {
  // Follow holder/waiter chains: if the site's holder (transitively) waits
  // for the requester, granting a wait would close a cycle.
  std::unordered_set<GlobalTxnId> visited;
  auto holder_it = holder_.find(site);
  if (holder_it == holder_.end()) return false;
  GlobalTxnId cur = holder_it->second;
  while (cur.valid()) {
    if (cur == requester) return true;
    if (!visited.insert(cur).second) return false;
    auto wait_it = waiting_on_.find(cur);
    if (wait_it == waiting_on_.end()) return false;
    auto next_it = holder_.find(wait_it->second);
    if (next_it == holder_.end()) return false;
    cur = next_it->second;
  }
  return false;
}

Verdict NaiveTwoPhase::CondSer(GlobalTxnId txn, SiteId site) {
  AddSteps(1);
  auto holder_it = holder_.find(site);
  if (holder_it == holder_.end() || holder_it->second == txn) {
    return Verdict::kReady;
  }
  if (WouldDeadlock(txn, site)) return Verdict::kAbort;
  auto& queue = waiters_[site];
  if (std::find(queue.begin(), queue.end(), txn) == queue.end()) {
    queue.push_back(txn);
    waiting_on_[txn] = site;
  }
  return Verdict::kWait;
}

void NaiveTwoPhase::ActSer(GlobalTxnId txn, SiteId site) {
  AddSteps(1);
  holder_[site] = txn;
  waiting_on_.erase(txn);
  auto waiters_it = waiters_.find(site);
  if (waiters_it != waiters_.end()) {
    auto& queue = waiters_it->second;
    queue.erase(std::remove(queue.begin(), queue.end(), txn), queue.end());
  }
}

void NaiveTwoPhase::ActFin(GlobalTxnId txn) {
  AddSteps(1);
  auto sites_it = sites_.find(txn);
  if (sites_it != sites_.end()) {
    for (SiteId site : sites_it->second) {
      auto holder_it = holder_.find(site);
      if (holder_it != holder_.end() && holder_it->second == txn) {
        holder_.erase(holder_it);
      }
    }
    sites_.erase(sites_it);
  }
}

void NaiveTwoPhase::ActAbortCleanup(GlobalTxnId txn) {
  ActFin(txn);
  waiting_on_.erase(txn);
  for (auto& [site, queue] : waiters_) {
    queue.erase(std::remove(queue.begin(), queue.end(), txn), queue.end());
  }
}

// ---------------------------------------------------------------------------
// NaiveTimestamp
// ---------------------------------------------------------------------------

void NaiveTimestamp::ActInit(const QueueOp& op) {
  AddSteps(1);
  ts_[op.txn] = next_ts_++;
}

Verdict NaiveTimestamp::CondSer(GlobalTxnId txn, SiteId site) {
  AddSteps(1);
  auto exec_it = executing_.find(site);
  if (exec_it != executing_.end() && exec_it->second.has_value()) {
    return Verdict::kWait;  // Pin the physical order.
  }
  auto max_it = max_executed_ts_.find(site);
  if (max_it != max_executed_ts_.end() && ts_.at(txn) < max_it->second) {
    return Verdict::kAbort;  // Arrived too late, as in basic TO.
  }
  return Verdict::kReady;
}

void NaiveTimestamp::ActSer(GlobalTxnId txn, SiteId site) {
  AddSteps(1);
  max_executed_ts_[site] = ts_.at(txn);
  executing_[site] = txn;
}

void NaiveTimestamp::ActAck(GlobalTxnId txn, SiteId site) {
  AddSteps(1);
  auto exec_it = executing_.find(site);
  if (exec_it != executing_.end() && exec_it->second == txn) {
    exec_it->second.reset();
  }
}

void NaiveTimestamp::ActFin(GlobalTxnId txn) {
  AddSteps(1);
  ts_.erase(txn);
}

void NaiveTimestamp::ActAbortCleanup(GlobalTxnId txn) {
  ts_.erase(txn);
  for (auto& [site, exec] : executing_) {
    if (exec == txn) exec.reset();
  }
}

}  // namespace mdbs::gtm
