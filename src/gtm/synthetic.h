#ifndef MDBS_GTM_SYNTHETIC_H_
#define MDBS_GTM_SYNTHETIC_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gtm/gtm2.h"

namespace mdbs::gtm {

/// Workload shape for the synthetic GTM2 harness.
struct SyntheticConfig {
  /// Sites in the multidatabase (the paper's m).
  int sites = 8;
  /// Concurrently active transactions (the paper's n).
  int active_txns = 16;
  /// Total transactions to run through the scheduler.
  int64_t total_txns = 1000;
  /// Sites per transaction: uniform in [dav_min, dav_max] (mean = dav).
  int dav_min = 2;
  int dav_max = 4;
  /// Probability that, at each step, a pending ack is delivered before any
  /// other action is taken; lower values produce more reordering and more
  /// in-flight transactions per site.
  double ack_priority = 0.5;
  uint64_t seed = 1;
};

/// Results of a synthetic run.
struct SyntheticReport {
  int64_t completed = 0;
  int64_t scheme_aborts = 0;
  int64_t ser_ops = 0;
  int64_t ser_waits = 0;
  int64_t scheme_steps = 0;
  /// scheme_steps minus the cost of failed WAIT re-evaluations — the
  /// paper's §4 cost model (targeted wakeup).
  int64_t scheduling_steps = 0;
  int64_t cond_evaluations = 0;
  /// ser(S) acyclic over the observed per-site execution orders.
  bool ser_schedule_serializable = true;

  double StepsPerTxn() const {
    return completed == 0 ? 0.0
                          : static_cast<double>(scheme_steps) /
                                static_cast<double>(completed);
  }
  double SchedulingStepsPerTxn() const {
    return completed == 0 ? 0.0
                          : static_cast<double>(scheduling_steps) /
                                static_cast<double>(completed);
  }
  double WaitsPerSerOp() const {
    return ser_ops == 0 ? 0.0
                        : static_cast<double>(ser_waits) /
                              static_cast<double>(ser_ops);
  }
  std::string ToString() const;
};

/// Drives a GTM2 scheme with a synthetic population of global transactions
/// — no local DBMSs, no event loop — exactly the abstraction of the
/// paper's §4: inits, sequential ser operations with acks, validates and
/// fins, under randomized arrival/ack interleavings. Used by the
/// complexity (E1), degree-of-concurrency (E2) and naive-GTM (E7)
/// experiments and reusable for standalone scheme exploration.
///
/// A scheme abort (non-conservative baselines) retires the transaction; a
/// fresh one replaces it so the active population stays constant.
class SyntheticGtmHarness {
 public:
  SyntheticGtmHarness(std::unique_ptr<Scheme> scheme,
                      const SyntheticConfig& config);

  /// Runs the configured population to completion and reports.
  SyntheticReport Run();

 private:
  struct TxnState {
    std::vector<SiteId> sites;
    bool inited = false;
    size_t enqueued_sers = 0;
    size_t acked_sers = 0;
    bool validate_sent = false;
    bool validated = false;
    bool fin_sent = false;
    bool finished = false;
    bool dead = false;
  };

  GlobalTxnId SpawnTxn();
  bool Step();  // One randomized action; false when nothing is possible.

  SyntheticConfig config_;
  Rng rng_;
  std::unique_ptr<Gtm2> gtm2_;
  std::map<GlobalTxnId, TxnState> txns_;
  std::vector<GlobalTxnId> active_;
  std::vector<QueueOp> pending_acks_;
  std::map<SiteId, std::vector<GlobalTxnId>> site_order_;
  int64_t next_id_ = 0;
  int64_t started_ = 0;
  int64_t completed_ = 0;
  int64_t aborted_ = 0;
};

}  // namespace mdbs::gtm

#endif  // MDBS_GTM_SYNTHETIC_H_
