#ifndef MDBS_GTM_SCHEME3_H_
#define MDBS_GTM_SCHEME3_H_

#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "gtm/scheme.h"

namespace mdbs::gtm {

/// Scheme 3, the O-scheme that permits all serializable schedules (paper
/// §7). Per transaction it maintains ser_bef(G̃_i) — the transitively closed
/// set of transactions serialized before G̃_i — and per site the last
/// transaction whose ser operation executed (last_k) and the set of
/// transactions announced but not yet executed there (set_k).
///
///   act(init_i)  adds G̃_i to set_k of its sites and seeds ser_bef(G̃_i)
///                with last_k and its ancestors;
///   cond(ser)    ser_k(G̃_i) may run unless some member of set_k is already
///                serialized before G̃_i (executing now would serialize G̃_i
///                before it too — a cycle), or the previous ser at the site
///                is not yet acked (the physical order must be pinned);
///   act(ser)     G̃_i precedes everything still pending at the site:
///                ser_bef of those transactions — and, for transitive
///                closure, of every transaction downstream of them — gains
///                ser_bef(G̃_i) ∪ {G̃_i};
///   cond(fin)    ser_bef(G̃_i) = ∅ — everything serialized before G̃_i has
///                finished, so G̃_i can be forgotten safely;
///   act(fin)     removes G̃_i everywhere.
///
/// Because the only ser-waits are those forced by a genuine
/// serialized-before relation, Scheme 3 never delays an operation stream
/// whose immediate processing is serializable — the "all serializable
/// schedules" property (Theorem 8 + §7). Complexity O(n^2 * dav)
/// (Theorem 9).
class Scheme3 : public ConservativeSchemeBase {
 public:
  /// `pin_acks` disables only the "previous ser at this site must be
  /// acked" half of cond(ser) when false — an ablation (bench E8) showing
  /// that without pinning the site's physical execution order, ser(S)
  /// serializability is lost even though the logical checks all pass.
  explicit Scheme3(bool pin_acks = true) : pin_acks_(pin_acks) {}

  SchemeKind kind() const override { return SchemeKind::kScheme3; }
  const char* Name() const override {
    return pin_acks_ ? "Scheme3-O" : "Scheme3-nopin";
  }
  /// The nopin ablation deliberately loses ser(S) serializability, so it
  /// must not claim the conservative guarantees the audit layer enforces.
  bool IsConservative() const override { return pin_acks_; }

  Status CheckStructuralInvariants() const override;
  Status AuditSerRelease(GlobalTxnId txn, SiteId site) const override;

  bool SupportsSnapshot() const override { return true; }
  void EncodeState(std::vector<uint8_t>* out) const override;
  bool DecodeState(const uint8_t* data, size_t size) override;

  void ActInit(const QueueOp& op) override;
  Verdict CondSer(GlobalTxnId txn, SiteId site) override;
  void ActSer(GlobalTxnId txn, SiteId site) override;
  void ActAck(GlobalTxnId txn, SiteId site) override;
  Verdict CondFin(GlobalTxnId txn) override;
  void ActFin(GlobalTxnId txn) override;
  void ActAbortCleanup(GlobalTxnId txn) override;

  /// ser_bef(txn); empty set when unknown (tests).
  const std::set<GlobalTxnId>& SerBef(GlobalTxnId txn) const;

 private:
  void RemoveEverywhere(GlobalTxnId txn);

  bool pin_acks_;
  std::unordered_map<GlobalTxnId, std::set<GlobalTxnId>> ser_bef_;
  std::unordered_map<GlobalTxnId, std::vector<SiteId>> sites_;
  std::unordered_map<SiteId, GlobalTxnId> last_;
  /// Per site: transactions whose ser executed there, in execution order,
  /// erased on fin/abort. A new announcement inherits ser_bef of the LAST
  /// live entry (plus the entry itself), freshly at init time. Tracking the
  /// history instead of only last_k preserves the ordering constraint when
  /// the most recent transaction aborts: its predecessor — whose ser also
  /// already executed at the site — takes over as the constraint source.
  /// Deriving the floor from last_ alone loses exactly that, and lets two
  /// survivors release their sers in opposite orders at two sites (an
  /// abstract ser(S) cycle).
  std::unordered_map<SiteId, std::vector<GlobalTxnId>> released_live_;
  std::unordered_map<SiteId, std::set<GlobalTxnId>> pending_;
  std::set<std::pair<int64_t, int64_t>> acked_;  // (txn, site)
};

}  // namespace mdbs::gtm

#endif  // MDBS_GTM_SCHEME3_H_
