#ifndef MDBS_GTM_SCHEME0_H_
#define MDBS_GTM_SCHEME0_H_

#include <deque>
#include <unordered_map>

#include "gtm/scheme.h"

namespace mdbs::gtm {

/// Scheme 0 (paper §4): a conservative-TO-like BT-scheme. One FIFO queue
/// per site; act(init_i) enqueues every ser_k(G_i) at its site's queue, a
/// ser operation may execute only at the front of its queue, and the ack
/// dequeues it. Transactions are therefore serialized in init-processing
/// order. Complexity O(dav) per transaction (Theorem: §4); lowest degree of
/// concurrency of the four schemes.
class Scheme0 : public ConservativeSchemeBase {
 public:
  SchemeKind kind() const override { return SchemeKind::kScheme0; }
  const char* Name() const override { return "Scheme0"; }
  bool IsConservative() const override { return true; }

  Status CheckStructuralInvariants() const override;
  Status AuditSerRelease(GlobalTxnId txn, SiteId site) const override;

  bool SupportsSnapshot() const override { return true; }
  void EncodeState(std::vector<uint8_t>* out) const override;
  bool DecodeState(const uint8_t* data, size_t size) override;

  void ActInit(const QueueOp& op) override;
  Verdict CondSer(GlobalTxnId txn, SiteId site) override;
  void ActSer(GlobalTxnId txn, SiteId site) override;
  void ActAck(GlobalTxnId txn, SiteId site) override;
  Verdict CondFin(GlobalTxnId txn) override;
  void ActFin(GlobalTxnId txn) override;
  void ActAbortCleanup(GlobalTxnId txn) override;

  /// Queue length at `site` (tests).
  size_t QueueLength(SiteId site) const;

 private:
  std::unordered_map<SiteId, std::deque<GlobalTxnId>> queues_;
};

/// The "no global control" strawman: every operation is released
/// immediately. Global serializability is NOT guaranteed — experiment E4
/// uses it to demonstrate the violations caused by indirect conflicts.
class SchemeNone : public ConservativeSchemeBase {
 public:
  SchemeKind kind() const override { return SchemeKind::kNone; }
  const char* Name() const override { return "NoControl"; }

  void ActInit(const QueueOp&) override {}
  Verdict CondSer(GlobalTxnId, SiteId) override { return Verdict::kReady; }
  void ActSer(GlobalTxnId, SiteId) override {}
  void ActAck(GlobalTxnId, SiteId) override {}
  Verdict CondFin(GlobalTxnId) override { return Verdict::kReady; }
  void ActFin(GlobalTxnId) override {}
  void ActAbortCleanup(GlobalTxnId) override {}

  /// Stateless, so the base's empty encoding is the whole snapshot.
  bool SupportsSnapshot() const override { return true; }
};

}  // namespace mdbs::gtm

#endif  // MDBS_GTM_SCHEME0_H_
