#ifndef MDBS_GTM_GTM2_H_
#define MDBS_GTM_GTM2_H_

#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <unordered_set>

#include "audit/audit.h"
#include "audit/ser_graph.h"
#include "common/ids.h"
#include "gtm/queue_op.h"
#include "gtm/scheme.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mdbs::gtm {

/// Aggregate counters of one GTM2 instance.
struct Gtm2Stats {
  int64_t processed_ops = 0;
  /// Operations inserted into WAIT at least once (the paper's
  /// degree-of-concurrency measure counts these).
  int64_t wait_additions = 0;
  /// The subset of wait_additions that are ser operations.
  int64_t ser_wait_additions = 0;
  /// cond() evaluations performed (both from QUEUE and WAIT rescans).
  int64_t cond_evaluations = 0;
  /// Scheme steps spent on WAIT re-evaluations that still failed. The
  /// paper's complexity model (§4) assumes targeted wakeup — only
  /// operations whose cond became true are examined — so the theoretical
  /// per-transaction step counts correspond to scheme().steps() minus this.
  int64_t failed_rescan_steps = 0;
  /// Transactions aborted on a scheme's demand (non-conservative only).
  int64_t scheme_aborts = 0;
};

/// GTM2: the driver of the paper's Basic_Scheme (Figure 3). It selects
/// operations from the front of QUEUE; when the scheme's cond holds it runs
/// the scheme's act plus the operation's side effect (releasing a ser
/// operation to its site, forwarding an ack to GTM1, ...); otherwise the
/// operation joins WAIT and is retried after every subsequent act.
class Gtm2 {
 public:
  struct Callbacks {
    /// act(ser_k(G_i)): submit the serialization-function operation to the
    /// local DBMS through the servers.
    std::function<void(GlobalTxnId, SiteId)> release_ser;
    /// act(ack(ser_k(G_i))): forward the ack to GTM1.
    std::function<void(GlobalTxnId, SiteId)> forward_ack;
    /// Validation passed: GTM1 may commit the subtransactions.
    std::function<void(GlobalTxnId)> validate_passed;
    /// The scheme demands aborting this transaction (non-conservative
    /// schemes only). GTM1 must abort the attempt and call AbortCleanup.
    std::function<void(GlobalTxnId)> abort_txn;
    /// fin_i processed: DS cleanup done.
    std::function<void(GlobalTxnId)> fin_done;
  };

  Gtm2(std::unique_ptr<Scheme> scheme, Callbacks callbacks);

  Gtm2(const Gtm2&) = delete;
  Gtm2& operator=(const Gtm2&) = delete;

  /// Inserts `op` at the back of QUEUE and processes the queue to
  /// quiescence (synchronously; all site interaction is deferred through
  /// the callbacks).
  void Enqueue(QueueOp op);

  /// Purges every queued/waiting operation of `txn` and removes it from the
  /// scheme's data structures. Called by GTM1 when an attempt dies.
  void AbortCleanup(GlobalTxnId txn);

  const Scheme& scheme() const { return *scheme_; }
  Scheme& mutable_scheme() { return *scheme_; }
  const Gtm2Stats& stats() const { return stats_; }

  size_t wait_size() const { return wait_.size(); }
  size_t queue_size() const { return queue_.size(); }

  /// Turns on the invariant auditor for this driver. `auditor` may be
  /// null, selecting the process-wide fail-fast default. The audited
  /// invariants (gated on Scheme::IsConservative where noted):
  ///   conservative-discipline  — a conservative scheme returned kAbort;
  ///   ser-release-discipline   — the scheme's own release rule, re-derived
  ///                              from its DS at act(ser) time, fails;
  ///   ser-graph-acyclic        — releasing this ser operation closed a
  ///                              cycle in the abstract ser(S) graph;
  ///   scheme-structure         — the scheme's structural self-check
  ///                              failed after an act.
  void EnableAudit(const audit::AuditConfig& config,
                   audit::Auditor* auditor);

  bool audit_enabled() const { return audit_enabled_; }
  const audit::Auditor* auditor() const { return auditor_; }

  /// Records QUEUE/WAIT dynamics and act executions into `sink` (nullptr
  /// disables); forwarded to the scheme for its DS events.
  void EnableTrace(obs::TraceSink* sink);

  /// Volatile GTM2 state as the durable GTM's checkpoints capture it. Only
  /// taken at strand-turn boundaries, where QUEUE is provably empty — so
  /// WAIT, the dead set, the counters and the scheme DS are the whole
  /// state.
  struct VolatileImage {
    std::vector<QueueOp> wait;       // in WAIT order
    std::vector<int64_t> dead_txns;  // sorted
    Gtm2Stats stats;
    int64_t scheme_steps = 0;
    std::vector<uint8_t> scheme_state;
  };

  /// Snapshots the volatile state; crashes unless the driver is quiescent
  /// (not pumping, QUEUE empty).
  VolatileImage SnapshotForCheckpoint() const;

  /// Restores a snapshot into a freshly reset driver. The scheme must
  /// support snapshots and accept the encoded state.
  void RestoreFromCheckpoint(const VolatileImage& image);

  /// GTM crash: drops QUEUE/WAIT/dead-set/stats and installs a fresh scheme
  /// instance; trace/metrics/audit wiring survives. The audit ser(S) graph
  /// restarts empty — deliberately not logged: a subset of its edges can
  /// only miss cycles (none exist if the run was clean), never fabricate
  /// one.
  void ResetForRecovery(std::unique_ptr<Scheme> fresh);

  /// Deterministic structural fingerprint of the volatile state (scheme DS
  /// encoding + steps, WAIT in order, dead set, counters). The recovery
  /// oracle compares a replayed instance's fingerprint against the live
  /// one's at the same log position.
  std::vector<uint8_t> StateFingerprint() const;

  /// Reports queue depth and critical-path WAIT dwell (ser/validate
  /// operations) to the always-on metrics engine (nullptr disables).
  void EnableMetrics(obs::MetricsEngine* engine) { metrics_ = engine; }

 private:
  void Pump();
  /// Evaluates cond(op). kReady -> runs act + side effects and returns true.
  /// kWait -> returns false. kAbort -> handles the abort and returns true
  /// (the operation is consumed).
  bool TryProcess(const QueueOp& op);
  void RunAct(const QueueOp& op);
  void DrainWait();

  /// Audit hooks around TryProcess/RunAct; no-ops unless EnableAudit ran.
  void AuditVerdict(const QueueOp& op, Verdict verdict);
  void AuditBeforeSerRelease(GlobalTxnId txn, SiteId site);
  void AuditAfterAct(const QueueOp& op);

  std::unique_ptr<Scheme> scheme_;
  Callbacks callbacks_;
  obs::TraceSink* trace_ = nullptr;
  obs::MetricsEngine* metrics_ = nullptr;
  std::deque<QueueOp> queue_;
  std::list<QueueOp> wait_;
  std::unordered_set<GlobalTxnId> dead_txns_;
  Gtm2Stats stats_;
  bool pumping_ = false;

  bool audit_enabled_ = false;
  audit::AuditConfig audit_config_;
  audit::Auditor* auditor_ = nullptr;
  audit::SerGraphAudit ser_graph_;
};

/// Constructs the scheme implementation for `kind`.
std::unique_ptr<Scheme> MakeScheme(SchemeKind kind);

}  // namespace mdbs::gtm

#endif  // MDBS_GTM_GTM2_H_
