#include "gtm/scheme2.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/logging.h"
#include "storage/framing.h"

namespace mdbs::gtm {

void Scheme2::ActInit(const QueueOp& op) {
  tsgd_.InsertTxn(op.txn, op.sites);
  // Dependencies from every already-executed ser operation at each site:
  // those transactions are serialized before G̃_i there.
  for (SiteId site : op.sites) {
    for (GlobalTxnId other : tsgd_.TxnsAt(site)) {
      AddSteps(1);
      if (other == op.txn) continue;
      if (Executed(other, site)) {
        tsgd_.AddDependency(site, other, op.txn);
        if (trace_ != nullptr) {
          trace_->Record(obs::TraceEventKind::kDepAdd, op.txn.value(),
                         site.value(), other.value(), op.txn.value(),
                         "executed");
        }
      }
    }
  }
  // Δ from Eliminate_Cycles breaks every remaining potential cycle through
  // G̃_i. A single pass suffices (Figure 4); the fixpoint loop guards the
  // invariant even for adversarial interleavings.
  for (int pass = 0; pass < 64; ++pass) {
    int64_t steps = 0;
    std::vector<Dependency> delta = tsgd_.EliminateCycles(op.txn, &steps);
    AddSteps(steps);
    if (delta.empty()) break;
    for (const Dependency& dep : delta) {
      tsgd_.AddDependency(dep.site, dep.from, dep.to);
      if (trace_ != nullptr) {
        trace_->Record(obs::TraceEventKind::kDepAdd, op.txn.value(),
                       dep.site.value(), dep.from.value(), dep.to.value(),
                       "delta");
      }
    }
  }
  if (validate_acyclicity_) {
    MDBS_CHECK(!tsgd_.HasCycleInvolving(op.txn))
        << "TSGD cycle involving " << op.txn << " survived Eliminate_Cycles";
  }
}

Status Scheme2::CheckStructuralInvariants() const {
  MDBS_RETURN_IF_ERROR(tsgd_.Validate());
  // Executed/acked markers refer to live (txn, site) edges, and an acked
  // ser was necessarily executed first.
  for (const auto& [marker, name] :
       {std::pair{&executed_, "executed"}, std::pair{&acked_, "acked"}}) {
    for (const auto& [txn_value, site_value] : *marker) {
      GlobalTxnId txn(txn_value);
      SiteId site(site_value);
      const std::vector<SiteId>& sites = tsgd_.SitesOf(txn);
      if (std::find(sites.begin(), sites.end(), site) == sites.end()) {
        return Status::Internal("Scheme2: stale " + std::string(name) +
                                " marker (" + ToString(txn) + ", " +
                                ToString(site) + ")");
      }
    }
  }
  for (const auto& pair : acked_) {
    if (!executed_.contains(pair)) {
      return Status::Internal("Scheme2: (" + ToString(GlobalTxnId(pair.first)) +
                              ", " + ToString(SiteId(pair.second)) +
                              ") acked but never executed");
    }
  }
  return Status::OK();
}

Status Scheme2::AuditSerRelease(GlobalTxnId txn, SiteId site) const {
  if (!tsgd_.HasTxn(txn)) {
    return Status::Internal("Scheme2: ser(" + ToString(txn) + "@" +
                            ToString(site) + ") released for unknown txn");
  }
  for (GlobalTxnId source : tsgd_.DependenciesInto(txn, site)) {
    if (!Acked(source, site)) {
      return Status::Internal(
          "Scheme2: ser(" + ToString(txn) + "@" + ToString(site) +
          ") released before its dependency source " + ToString(source) +
          " was acked");
    }
  }
  return Status::OK();
}

Verdict Scheme2::CondSer(GlobalTxnId txn, SiteId site) {
  for (GlobalTxnId source : tsgd_.DependenciesInto(txn, site)) {
    AddSteps(1);
    if (!Acked(source, site)) return Verdict::kWait;
  }
  return Verdict::kReady;
}

void Scheme2::ActSer(GlobalTxnId txn, SiteId site) {
  executed_.insert({txn.value(), site.value()});
  // The execution order is now fixed: G̃_i precedes every ser operation at
  // this site that has not executed yet.
  for (GlobalTxnId other : tsgd_.TxnsAt(site)) {
    AddSteps(1);
    if (other == txn || Executed(other, site)) continue;
    tsgd_.AddDependency(site, txn, other);
    if (trace_ != nullptr) {
      trace_->Record(obs::TraceEventKind::kDepAdd, txn.value(), site.value(),
                     txn.value(), other.value(), "order");
    }
  }
}

void Scheme2::ActAck(GlobalTxnId txn, SiteId site) {
  AddSteps(1);
  acked_.insert({txn.value(), site.value()});
}

Verdict Scheme2::CondFin(GlobalTxnId txn) {
  for (SiteId site : tsgd_.SitesOf(txn)) {
    AddSteps(1);
    if (tsgd_.HasDependenciesInto(txn, site)) return Verdict::kWait;
  }
  return Verdict::kReady;
}

void Scheme2::ActFin(GlobalTxnId txn) {
  for (SiteId site : tsgd_.SitesOf(txn)) {
    AddSteps(1);
    executed_.erase({txn.value(), site.value()});
    acked_.erase({txn.value(), site.value()});
  }
  TraceDepDrop(txn, "fin");
  tsgd_.RemoveTxn(txn);
}

void Scheme2::ActAbortCleanup(GlobalTxnId txn) {
  for (SiteId site : tsgd_.SitesOf(txn)) {
    executed_.erase({txn.value(), site.value()});
    acked_.erase({txn.value(), site.value()});
  }
  TraceDepDrop(txn, "abort");
  tsgd_.RemoveTxn(txn);
}

void Scheme2::TraceDepDrop(GlobalTxnId txn, const char* why) {
  if (trace_ == nullptr) return;
  int64_t incoming = 0;
  for (SiteId site : tsgd_.SitesOf(txn)) {
    incoming += static_cast<int64_t>(tsgd_.DependenciesInto(txn, site).size());
  }
  trace_->Record(obs::TraceEventKind::kDepDrop, txn.value(), -1, incoming, 0,
                 why);
}


void Scheme2::EncodeState(std::vector<uint8_t>* out) const {
  std::vector<GlobalTxnId> txns = tsgd_.Txns();
  storage::PutU32(out, static_cast<uint32_t>(txns.size()));
  for (GlobalTxnId txn : txns) {
    storage::PutI64(out, txn.value());
    const std::vector<SiteId>& txn_sites = tsgd_.SitesOf(txn);
    storage::PutU32(out, static_cast<uint32_t>(txn_sites.size()));
    for (SiteId site : txn_sites) storage::PutI64(out, site.value());
  }
  std::vector<Dependency> deps = tsgd_.AllDependencies();
  storage::PutU32(out, static_cast<uint32_t>(deps.size()));
  for (const Dependency& dep : deps) {
    storage::PutI64(out, dep.site.value());
    storage::PutI64(out, dep.from.value());
    storage::PutI64(out, dep.to.value());
  }
  storage::PutU32(out, static_cast<uint32_t>(executed_.size()));
  for (const auto& [txn, site] : executed_) {
    storage::PutI64(out, txn);
    storage::PutI64(out, site);
  }
  storage::PutU32(out, static_cast<uint32_t>(acked_.size()));
  for (const auto& [txn, site] : acked_) {
    storage::PutI64(out, txn);
    storage::PutI64(out, site);
  }
}

bool Scheme2::DecodeState(const uint8_t* data, size_t size) {
  storage::Cursor c(data, size);
  tsgd_ = Tsgd();
  executed_.clear();
  acked_.clear();
  uint32_t n_txns = c.U32();
  if (!c.ok()) return false;
  for (uint32_t i = 0; i < n_txns && c.ok(); ++i) {
    GlobalTxnId txn(c.I64());
    uint32_t n_sites = c.U32();
    if (!c.ok()) return false;
    std::vector<SiteId> txn_sites;
    txn_sites.reserve(n_sites);
    for (uint32_t j = 0; j < n_sites && c.ok(); ++j) {
      txn_sites.push_back(SiteId(c.I64()));
    }
    if (!c.ok()) return false;
    tsgd_.InsertTxn(txn, txn_sites);
  }
  uint32_t n_deps = c.U32();
  if (!c.ok()) return false;
  for (uint32_t i = 0; i < n_deps && c.ok(); ++i) {
    SiteId site(c.I64());
    GlobalTxnId from(c.I64());
    GlobalTxnId to(c.I64());
    if (!c.ok()) return false;
    tsgd_.AddDependency(site, from, to);
  }
  uint32_t n_executed = c.U32();
  if (!c.ok()) return false;
  for (uint32_t i = 0; i < n_executed && c.ok(); ++i) {
    int64_t txn = c.I64();
    int64_t site = c.I64();
    executed_.insert({txn, site});
  }
  uint32_t n_acked = c.U32();
  if (!c.ok()) return false;
  for (uint32_t i = 0; i < n_acked && c.ok(); ++i) {
    int64_t txn = c.I64();
    int64_t site = c.I64();
    acked_.insert({txn, site});
  }
  return c.ok() && c.exhausted();
}

}  // namespace mdbs::gtm
