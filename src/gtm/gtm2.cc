#include "gtm/gtm2.h"

#include "common/logging.h"

namespace mdbs::gtm {

Gtm2::Gtm2(std::unique_ptr<Scheme> scheme, Callbacks callbacks)
    : scheme_(std::move(scheme)), callbacks_(std::move(callbacks)) {
  MDBS_CHECK(scheme_ != nullptr);
}

void Gtm2::Enqueue(QueueOp op) {
  queue_.push_back(std::move(op));
  if (!pumping_) Pump();
}

void Gtm2::Pump() {
  pumping_ = true;
  while (!queue_.empty()) {
    QueueOp op = std::move(queue_.front());
    queue_.pop_front();
    if (dead_txns_.contains(op.txn)) continue;
    if (TryProcess(op)) {
      DrainWait();
    } else {
      ++stats_.wait_additions;
      if (op.kind == QueueOpKind::kSer) ++stats_.ser_wait_additions;
      wait_.push_back(std::move(op));
    }
  }
  pumping_ = false;
}

bool Gtm2::TryProcess(const QueueOp& op) {
  ++stats_.cond_evaluations;
  Verdict verdict = Verdict::kReady;
  switch (op.kind) {
    case QueueOpKind::kInit:
      verdict = scheme_->CondInit(op);
      break;
    case QueueOpKind::kSer:
      verdict = scheme_->CondSer(op.txn, op.site);
      break;
    case QueueOpKind::kAck:
      verdict = scheme_->CondAck(op.txn, op.site);
      break;
    case QueueOpKind::kValidate:
      verdict = scheme_->CondValidate(op.txn);
      break;
    case QueueOpKind::kFin:
      verdict = scheme_->CondFin(op.txn);
      break;
  }
  switch (verdict) {
    case Verdict::kWait:
      return false;
    case Verdict::kAbort:
      ++stats_.scheme_aborts;
      if (callbacks_.abort_txn) callbacks_.abort_txn(op.txn);
      return true;
    case Verdict::kReady:
      RunAct(op);
      return true;
  }
  return false;
}

void Gtm2::RunAct(const QueueOp& op) {
  ++stats_.processed_ops;
  switch (op.kind) {
    case QueueOpKind::kInit:
      scheme_->ActInit(op);
      break;
    case QueueOpKind::kSer:
      scheme_->ActSer(op.txn, op.site);
      if (callbacks_.release_ser) callbacks_.release_ser(op.txn, op.site);
      break;
    case QueueOpKind::kAck:
      scheme_->ActAck(op.txn, op.site);
      if (callbacks_.forward_ack) callbacks_.forward_ack(op.txn, op.site);
      break;
    case QueueOpKind::kValidate:
      scheme_->ActValidate(op.txn);
      if (callbacks_.validate_passed) callbacks_.validate_passed(op.txn);
      break;
    case QueueOpKind::kFin:
      scheme_->ActFin(op.txn);
      if (callbacks_.fin_done) callbacks_.fin_done(op.txn);
      break;
  }
}

void Gtm2::DrainWait() {
  // Figure 3: after an act, process every waiting operation whose cond now
  // holds; each success can enable further ones, so rescan to fixpoint.
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = wait_.begin(); it != wait_.end();) {
      if (dead_txns_.contains(it->txn)) {
        it = wait_.erase(it);
        continue;
      }
      int64_t steps_before = scheme_->steps();
      if (TryProcess(*it)) {
        it = wait_.erase(it);
        progress = true;
      } else {
        stats_.failed_rescan_steps += scheme_->steps() - steps_before;
        ++it;
      }
    }
  }
}

void Gtm2::AbortCleanup(GlobalTxnId txn) {
  dead_txns_.insert(txn);
  if (!pumping_) {
    // Eager purge. When called from inside the pump (a scheme abort
    // surfacing mid-scan), the purge must stay lazy: Pump/DrainWait skip
    // and erase dead transactions' operations as they encounter them, and
    // erasing here would invalidate the iterator of the scan that invoked
    // the abort callback.
    for (auto it = wait_.begin(); it != wait_.end();) {
      it = (it->txn == txn) ? wait_.erase(it) : std::next(it);
    }
  }
  scheme_->ActAbortCleanup(txn);
  // Removing the transaction may unblock waiting operations.
  if (!pumping_) {
    pumping_ = true;
    DrainWait();
    pumping_ = false;
    if (!queue_.empty()) Pump();
  }
}

}  // namespace mdbs::gtm
