#include "gtm/gtm2.h"

#include <algorithm>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "storage/framing.h"

namespace mdbs::gtm {

Gtm2::Gtm2(std::unique_ptr<Scheme> scheme, Callbacks callbacks)
    : scheme_(std::move(scheme)), callbacks_(std::move(callbacks)) {
  MDBS_CHECK(scheme_ != nullptr);
}

void Gtm2::EnableTrace(obs::TraceSink* sink) {
  trace_ = sink;
  scheme_->EnableTrace(sink);
}

void Gtm2::EnableAudit(const audit::AuditConfig& config,
                       audit::Auditor* auditor) {
  audit_config_ = config;
  audit_enabled_ = audit::kAuditCompiledIn && config.enabled;
  auditor_ = auditor != nullptr ? auditor : audit::Auditor::Default();
}

void Gtm2::AuditVerdict(const QueueOp& op, Verdict verdict) {
  if (!audit_enabled_) return;
  if (verdict == Verdict::kAbort && scheme_->IsConservative()) {
    auditor_->Report(audit::AuditViolation{
        "conservative-discipline",
        std::string(scheme_->Name()) + " demanded an abort on " +
            op.ToString() + " (Theorems 3/5/8: Schemes 0-3 never abort)",
        {op.txn.value()},
        op.txn.value()});
  }
}

void Gtm2::AuditBeforeSerRelease(GlobalTxnId txn, SiteId site) {
  if (!audit_enabled_ || !scheme_->IsConservative()) return;
  if (audit_config_.check_release_discipline) {
    Status status = scheme_->AuditSerRelease(txn, site);
    if (!status.ok()) {
      auditor_->Report(audit::AuditViolation{
          "ser-release-discipline", status.message(), {txn.value()},
          txn.value()});
    }
  }
  if (audit_config_.check_ser_graph) {
    std::optional<std::vector<int64_t>> cycle =
        ser_graph_.RecordRelease(txn.value(), site.value());
    if (cycle.has_value()) {
      auditor_->Report(audit::AuditViolation{
          "ser-graph-acyclic",
          "releasing ser(" + ToString(txn) + "@" + ToString(site) +
              ") closes a cycle in the abstract ser(S) graph (Theorem 1)",
          *cycle, txn.value()});
    }
  }
}

void Gtm2::AuditAfterAct(const QueueOp& op) {
  if (!audit_enabled_) return;
  if (op.kind == QueueOpKind::kFin) ser_graph_.RemoveTxn(op.txn.value());
  if (audit_config_.check_scheme_structure) {
    Status status = scheme_->CheckStructuralInvariants();
    if (!status.ok()) {
      auditor_->Report(audit::AuditViolation{
          "scheme-structure",
          status.message() + " (after " + op.ToString() + ")",
          {op.txn.value()}, op.txn.value()});
    }
  }
}

void Gtm2::Enqueue(QueueOp op) {
  queue_.push_back(std::move(op));
  if (trace_ != nullptr) {
    trace_->Record(obs::TraceEventKind::kQueueDepth, queue_.back().txn.value(),
                   -1, static_cast<int64_t>(queue_.size()),
                   static_cast<int64_t>(wait_.size()));
  }
  if (metrics_ != nullptr) {
    metrics_->SampleGtm2Depth(static_cast<int64_t>(queue_.size()),
                              static_cast<int64_t>(wait_.size()));
  }
  if (!pumping_) Pump();
}

void Gtm2::Pump() {
  pumping_ = true;
  while (!queue_.empty()) {
    QueueOp op = std::move(queue_.front());
    queue_.pop_front();
    if (dead_txns_.contains(op.txn)) continue;
    if (TryProcess(op)) {
      DrainWait();
    } else {
      ++stats_.wait_additions;
      if (op.kind == QueueOpKind::kSer) ++stats_.ser_wait_additions;
      if (trace_ != nullptr) {
        trace_->Record(obs::TraceEventKind::kWaitEnter, op.txn.value(),
                       op.site.value(),
                       static_cast<int64_t>(wait_.size()) + 1, 0,
                       QueueOpKindName(op.kind));
      }
      if (metrics_ != nullptr && (op.kind == QueueOpKind::kSer ||
                                  op.kind == QueueOpKind::kValidate)) {
        metrics_->WaitEnter(op.txn);
      }
      wait_.push_back(std::move(op));
    }
  }
  pumping_ = false;
}

bool Gtm2::TryProcess(const QueueOp& op) {
  ++stats_.cond_evaluations;
  Verdict verdict = Verdict::kReady;
  switch (op.kind) {
    case QueueOpKind::kInit:
      verdict = scheme_->CondInit(op);
      break;
    case QueueOpKind::kSer:
      verdict = scheme_->CondSer(op.txn, op.site);
      break;
    case QueueOpKind::kAck:
      verdict = scheme_->CondAck(op.txn, op.site);
      break;
    case QueueOpKind::kValidate:
      verdict = scheme_->CondValidate(op.txn);
      break;
    case QueueOpKind::kFin:
      verdict = scheme_->CondFin(op.txn);
      break;
  }
  AuditVerdict(op, verdict);
  switch (verdict) {
    case Verdict::kWait:
      return false;
    case Verdict::kAbort:
      ++stats_.scheme_aborts;
      if (trace_ != nullptr) {
        trace_->Record(obs::TraceEventKind::kSchemeAbort, op.txn.value(),
                       op.site.value(), 0, 0, QueueOpKindName(op.kind));
      }
      if (callbacks_.abort_txn) callbacks_.abort_txn(op.txn);
      return true;
    case Verdict::kReady:
      RunAct(op);
      return true;
  }
  return false;
}

void Gtm2::RunAct(const QueueOp& op) {
  ++stats_.processed_ops;
  switch (op.kind) {
    case QueueOpKind::kInit:
      scheme_->ActInit(op);
      if (trace_ != nullptr) {
        trace_->Record(obs::TraceEventKind::kInit, op.txn.value(), -1,
                       static_cast<int64_t>(op.sites.size()));
      }
      break;
    case QueueOpKind::kSer:
      // Audit before the act mutates DS: the release decision must be
      // justified by the data structures as they are *now*.
      AuditBeforeSerRelease(op.txn, op.site);
      scheme_->ActSer(op.txn, op.site);
      if (trace_ != nullptr) {
        trace_->Record(obs::TraceEventKind::kSerRelease, op.txn.value(),
                       op.site.value());
      }
      if (callbacks_.release_ser) callbacks_.release_ser(op.txn, op.site);
      break;
    case QueueOpKind::kAck:
      scheme_->ActAck(op.txn, op.site);
      if (trace_ != nullptr) {
        trace_->Record(obs::TraceEventKind::kAck, op.txn.value(),
                       op.site.value());
      }
      if (callbacks_.forward_ack) callbacks_.forward_ack(op.txn, op.site);
      break;
    case QueueOpKind::kValidate:
      scheme_->ActValidate(op.txn);
      if (trace_ != nullptr) {
        trace_->Record(obs::TraceEventKind::kValidate, op.txn.value(), -1);
      }
      if (callbacks_.validate_passed) callbacks_.validate_passed(op.txn);
      break;
    case QueueOpKind::kFin:
      scheme_->ActFin(op.txn);
      if (trace_ != nullptr) {
        trace_->Record(obs::TraceEventKind::kFin, op.txn.value(), -1);
      }
      if (callbacks_.fin_done) callbacks_.fin_done(op.txn);
      break;
  }
  AuditAfterAct(op);
}

void Gtm2::DrainWait() {
  // Figure 3: after an act, process every waiting operation whose cond now
  // holds; each success can enable further ones, so rescan to fixpoint.
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = wait_.begin(); it != wait_.end();) {
      if (dead_txns_.contains(it->txn)) {
        if (trace_ != nullptr) {
          trace_->Record(obs::TraceEventKind::kWaitAbandon, it->txn.value(),
                         it->site.value(), 0, 0, QueueOpKindName(it->kind));
        }
        it = wait_.erase(it);
        continue;
      }
      int64_t steps_before = scheme_->steps();
      // Snapshot identity before TryProcess: a scheme abort inside the call
      // may splice other entries out of wait_, but never *it itself.
      const QueueOp& waiting = *it;
      if (TryProcess(waiting)) {
        if (trace_ != nullptr) {
          trace_->Record(obs::TraceEventKind::kWaitExit, waiting.txn.value(),
                         waiting.site.value(),
                         static_cast<int64_t>(wait_.size()) - 1, 0,
                         QueueOpKindName(waiting.kind));
        }
        if (metrics_ != nullptr && (waiting.kind == QueueOpKind::kSer ||
                                    waiting.kind == QueueOpKind::kValidate)) {
          metrics_->WaitExit(waiting.txn);
        }
        it = wait_.erase(it);
        progress = true;
      } else {
        stats_.failed_rescan_steps += scheme_->steps() - steps_before;
        ++it;
      }
    }
  }
}

void Gtm2::AbortCleanup(GlobalTxnId txn) {
  dead_txns_.insert(txn);
  if (audit_enabled_) ser_graph_.RemoveTxn(txn.value());
  if (!pumping_) {
    // Eager purge. When called from inside the pump (a scheme abort
    // surfacing mid-scan), the purge must stay lazy: Pump/DrainWait skip
    // and erase dead transactions' operations as they encounter them, and
    // erasing here would invalidate the iterator of the scan that invoked
    // the abort callback.
    for (auto it = wait_.begin(); it != wait_.end();) {
      if (it->txn == txn) {
        if (trace_ != nullptr) {
          trace_->Record(obs::TraceEventKind::kWaitAbandon, it->txn.value(),
                         it->site.value(), 0, 0, QueueOpKindName(it->kind));
        }
        it = wait_.erase(it);
      } else {
        ++it;
      }
    }
  }
  scheme_->ActAbortCleanup(txn);
  // Removing the transaction may unblock waiting operations.
  if (!pumping_) {
    pumping_ = true;
    DrainWait();
    pumping_ = false;
    if (!queue_.empty()) Pump();
  }
}

namespace {

void EncodeOp(const QueueOp& op, std::vector<uint8_t>* out) {
  storage::PutU8(out, static_cast<uint8_t>(op.kind));
  storage::PutI64(out, op.txn.value());
  storage::PutI64(out, op.site.value());
  storage::PutU32(out, static_cast<uint32_t>(op.sites.size()));
  for (SiteId site : op.sites) storage::PutI64(out, site.value());
}

std::vector<int64_t> SortedTxns(
    const std::unordered_set<GlobalTxnId>& txns) {
  std::vector<int64_t> sorted;
  sorted.reserve(txns.size());
  for (GlobalTxnId txn : txns) sorted.push_back(txn.value());
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

}  // namespace

Gtm2::VolatileImage Gtm2::SnapshotForCheckpoint() const {
  MDBS_CHECK(!pumping_ && queue_.empty())
      << "GTM2 snapshot requires a quiescent driver";
  VolatileImage image;
  image.wait.assign(wait_.begin(), wait_.end());
  image.dead_txns = SortedTxns(dead_txns_);
  image.stats = stats_;
  image.scheme_steps = scheme_->steps();
  scheme_->EncodeState(&image.scheme_state);
  return image;
}

void Gtm2::RestoreFromCheckpoint(const VolatileImage& image) {
  MDBS_CHECK(!pumping_ && queue_.empty());
  wait_.assign(image.wait.begin(), image.wait.end());
  dead_txns_.clear();
  for (int64_t txn : image.dead_txns) dead_txns_.insert(GlobalTxnId(txn));
  stats_ = image.stats;
  MDBS_CHECK(scheme_->SupportsSnapshot())
      << scheme_->Name() << " cannot restore a checkpoint";
  MDBS_CHECK(
      scheme_->DecodeState(image.scheme_state.data(), image.scheme_state.size()))
      << "undecodable " << scheme_->Name() << " snapshot";
  scheme_->RestoreSteps(image.scheme_steps);
}

void Gtm2::ResetForRecovery(std::unique_ptr<Scheme> fresh) {
  MDBS_CHECK(fresh != nullptr);
  queue_.clear();
  wait_.clear();
  dead_txns_.clear();
  stats_ = Gtm2Stats{};
  pumping_ = false;
  ser_graph_ = audit::SerGraphAudit();
  scheme_ = std::move(fresh);
  scheme_->EnableTrace(trace_);
}

std::vector<uint8_t> Gtm2::StateFingerprint() const {
  std::vector<uint8_t> out;
  scheme_->EncodeState(&out);
  storage::PutI64(&out, scheme_->steps());
  storage::PutU32(&out, static_cast<uint32_t>(wait_.size()));
  for (const QueueOp& op : wait_) EncodeOp(op, &out);
  std::vector<int64_t> dead = SortedTxns(dead_txns_);
  storage::PutU32(&out, static_cast<uint32_t>(dead.size()));
  for (int64_t txn : dead) storage::PutI64(&out, txn);
  storage::PutI64(&out, stats_.processed_ops);
  storage::PutI64(&out, stats_.wait_additions);
  storage::PutI64(&out, stats_.ser_wait_additions);
  storage::PutI64(&out, stats_.cond_evaluations);
  storage::PutI64(&out, stats_.failed_rescan_steps);
  storage::PutI64(&out, stats_.scheme_aborts);
  return out;
}

}  // namespace mdbs::gtm
