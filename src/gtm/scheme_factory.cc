#include "common/logging.h"
#include "gtm/baselines.h"
#include "gtm/gtm2.h"
#include "gtm/robust_fast_path.h"
#include "gtm/scheme0.h"
#include "gtm/scheme1.h"
#include "gtm/scheme2.h"
#include "gtm/scheme3.h"

namespace mdbs::gtm {

const char* SchemeKindName(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kScheme0:
      return "Scheme0";
    case SchemeKind::kScheme1:
      return "Scheme1";
    case SchemeKind::kScheme2:
      return "Scheme2";
    case SchemeKind::kScheme3:
      return "Scheme3";
    case SchemeKind::kTicketOptimistic:
      return "TicketOptimistic";
    case SchemeKind::kNone:
      return "NoControl";
  }
  return "?";
}

std::unique_ptr<Scheme> MakeScheme(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kScheme0:
      return std::make_unique<Scheme0>();
    case SchemeKind::kScheme1:
      return std::make_unique<Scheme1>();
    case SchemeKind::kScheme2:
      return std::make_unique<Scheme2>();
    case SchemeKind::kScheme3:
      return std::make_unique<Scheme3>();
    case SchemeKind::kTicketOptimistic:
      return std::make_unique<TicketOptimistic>();
    case SchemeKind::kNone:
      return std::make_unique<SchemeNone>();
  }
  MDBS_CHECK(false) << "unknown scheme kind";
  return nullptr;
}

std::unique_ptr<Scheme> MakeRobustFastPath(SchemeKind certified_as) {
  return std::make_unique<RobustFastPath>(certified_as);
}

}  // namespace mdbs::gtm
