#include "gtm/synthetic.h"

#include <algorithm>
#include <functional>
#include <sstream>

#include "common/logging.h"
#include "sched/graph.h"

namespace mdbs::gtm {

std::string SyntheticReport::ToString() const {
  std::ostringstream os;
  os << "completed=" << completed << " ser_ops=" << ser_ops
     << " ser_waits=" << ser_waits << " waits/ser=" << WaitsPerSerOp()
     << " steps/txn=" << StepsPerTxn() << " aborts=" << scheme_aborts
     << " ser(S)-serializable="
     << (ser_schedule_serializable ? "yes" : "NO");
  return os.str();
}

SyntheticGtmHarness::SyntheticGtmHarness(std::unique_ptr<Scheme> scheme,
                                         const SyntheticConfig& config)
    : config_(config), rng_(config.seed) {
  Gtm2::Callbacks callbacks;
  callbacks.release_ser = [this](GlobalTxnId txn, SiteId site) {
    pending_acks_.push_back(QueueOp::Ack(txn, site));
  };
  callbacks.forward_ack = [this](GlobalTxnId txn, SiteId site) {
    // The ack is the moment the site's execution order becomes known; with
    // ack pinning (one outstanding ser per site) it coincides with the
    // release order, without it the randomized ack delivery models an
    // asynchronous site executing in-flight operations in any order.
    site_order_[site].push_back(txn);
    ++txns_.at(txn).acked_sers;
  };
  callbacks.validate_passed = [this](GlobalTxnId txn) {
    txns_.at(txn).validated = true;
  };
  callbacks.abort_txn = [this](GlobalTxnId txn) {
    TxnState& state = txns_.at(txn);
    if (state.dead) return;
    state.dead = true;
    ++aborted_;
    gtm2_->AbortCleanup(txn);
    // The pending acks of a dead transaction are dropped by Gtm2 itself.
  };
  callbacks.fin_done = [this](GlobalTxnId txn) {
    txns_.at(txn).finished = true;
    ++completed_;
  };
  gtm2_ = std::make_unique<Gtm2>(std::move(scheme), std::move(callbacks));
}

GlobalTxnId SyntheticGtmHarness::SpawnTxn() {
  GlobalTxnId id{next_id_++};
  std::vector<SiteId> all;
  all.reserve(static_cast<size_t>(config_.sites));
  for (int s = 0; s < config_.sites; ++s) all.push_back(SiteId(s));
  rng_.Shuffle(&all);
  int dav = static_cast<int>(rng_.NextInRange(
      config_.dav_min, std::min(config_.dav_max, config_.sites)));
  all.resize(static_cast<size_t>(std::max(1, dav)));
  txns_[id] = TxnState{std::move(all)};
  active_.push_back(id);
  ++started_;
  return id;
}

bool SyntheticGtmHarness::Step() {
  // Deliver a random pending ack with priority ack_priority.
  if (!pending_acks_.empty() && rng_.NextBernoulli(config_.ack_priority)) {
    size_t index = rng_.NextBelow(pending_acks_.size());
    QueueOp ack = pending_acks_[index];
    pending_acks_.erase(pending_acks_.begin() +
                        static_cast<ptrdiff_t>(index));
    gtm2_->Enqueue(ack);
    return true;
  }
  // Collect GTM1-legal actions over active transactions.
  std::vector<std::function<void()>> actions;
  for (GlobalTxnId id : active_) {
    TxnState& state = txns_.at(id);
    if (state.dead || state.finished) continue;
    if (!state.inited) {
      actions.push_back([this, id] {
        TxnState& s = txns_.at(id);
        s.inited = true;
        gtm2_->Enqueue(QueueOp::Init(id, s.sites));
      });
      continue;
    }
    if (state.enqueued_sers < state.sites.size() &&
        state.enqueued_sers == state.acked_sers) {
      actions.push_back([this, id] {
        TxnState& s = txns_.at(id);
        gtm2_->Enqueue(QueueOp::Ser(id, s.sites[s.enqueued_sers++]));
      });
    }
    if (state.acked_sers == state.sites.size() && !state.validate_sent) {
      actions.push_back([this, id] {
        txns_.at(id).validate_sent = true;
        gtm2_->Enqueue(QueueOp::Validate(id));
      });
    }
    if (state.validated && !state.fin_sent) {
      actions.push_back([this, id] {
        txns_.at(id).fin_sent = true;
        gtm2_->Enqueue(QueueOp::Fin(id));
      });
    }
  }
  if (actions.empty()) {
    if (pending_acks_.empty()) return false;
    size_t index = rng_.NextBelow(pending_acks_.size());
    QueueOp ack = pending_acks_[index];
    pending_acks_.erase(pending_acks_.begin() +
                        static_cast<ptrdiff_t>(index));
    gtm2_->Enqueue(ack);
    return true;
  }
  actions[rng_.NextBelow(actions.size())]();
  return true;
}

SyntheticReport SyntheticGtmHarness::Run() {
  while (completed_ + aborted_ < config_.total_txns) {
    // Refill the population.
    size_t live = 0;
    for (GlobalTxnId id : active_) {
      const TxnState& state = txns_.at(id);
      if (!state.finished && !state.dead) ++live;
    }
    while (live < static_cast<size_t>(config_.active_txns) &&
           started_ < config_.total_txns) {
      SpawnTxn();
      ++live;
    }
    // Compact the active list occasionally.
    if (active_.size() > 4 * static_cast<size_t>(config_.active_txns)) {
      active_.erase(std::remove_if(active_.begin(), active_.end(),
                                   [this](GlobalTxnId id) {
                                     const TxnState& s = txns_.at(id);
                                     return s.finished || s.dead;
                                   }),
                    active_.end());
    }
    if (!Step()) {
      // Nothing possible: with live transactions this is a scheduler stall.
      MDBS_CHECK(live == 0) << "synthetic harness stalled with " << live
                            << " live transactions";
      break;
    }
  }

  SyntheticReport report;
  report.completed = completed_;
  const Gtm2Stats& stats = gtm2_->stats();
  report.scheme_aborts = stats.scheme_aborts;
  report.ser_waits = stats.ser_wait_additions;
  report.cond_evaluations = stats.cond_evaluations;
  report.scheme_steps = gtm2_->scheme().steps();
  report.scheduling_steps =
      gtm2_->scheme().steps() - stats.failed_rescan_steps;
  int64_t ser_ops = 0;
  for (const auto& [site, order] : site_order_) {
    ser_ops += static_cast<int64_t>(order.size());
  }
  report.ser_ops = ser_ops;
  sched::DirectedGraph graph;
  for (const auto& [site, order] : site_order_) {
    // Aborted attempts vanish from the committed projection; chain the
    // surviving transactions in their observed order.
    std::vector<GlobalTxnId> alive;
    for (GlobalTxnId id : order) {
      if (!txns_.at(id).dead) alive.push_back(id);
    }
    for (size_t i = 1; i < alive.size(); ++i) {
      graph.AddEdge(alive[i - 1].value(), alive[i].value());
    }
  }
  report.ser_schedule_serializable = !graph.HasCycle();
  return report;
}

}  // namespace mdbs::gtm
