#include "gtm/scheme3.h"

#include <algorithm>
#include <string>

#include "common/logging.h"
#include "storage/framing.h"

namespace mdbs::gtm {

void Scheme3::ActInit(const QueueOp& op) {
  MDBS_CHECK(!sites_.contains(op.txn)) << op.txn << " init twice";
  sites_[op.txn] = op.sites;
  std::set<GlobalTxnId>& sb = ser_bef_[op.txn];
  for (SiteId site : op.sites) {
    pending_[site].insert(op.txn);
    AddSteps(1);
    auto hist_it = released_live_.find(site);
    if (hist_it == released_live_.end() || hist_it->second.empty()) continue;
    GlobalTxnId last = hist_it->second.back();
    const std::set<GlobalTxnId>& last_sb = ser_bef_.at(last);
    sb.insert(last_sb.begin(), last_sb.end());
    sb.insert(last);
    AddSteps(static_cast<int64_t>(last_sb.size()) + 1);
  }
  if (trace_ != nullptr) {
    trace_->Record(obs::TraceEventKind::kSerBefSeed, op.txn.value(), -1,
                   static_cast<int64_t>(sb.size()));
  }
}

Status Scheme3::CheckStructuralInvariants() const {
  if (ser_bef_.size() != sites_.size()) {
    return Status::Internal(
        "Scheme3: ser_bef tracks " + std::to_string(ser_bef_.size()) +
        " txns but sites tracks " + std::to_string(sites_.size()));
  }
  for (const auto& [txn, sb] : ser_bef_) {
    // Irreflexivity: nothing serializes before itself (Theorem 8's working
    // invariant; ActSer also asserts it at the insertion point).
    if (sb.contains(txn)) {
      return Status::Internal("Scheme3: " + ToString(txn) +
                              " serialized before itself");
    }
    if (!sites_.contains(txn)) {
      return Status::Internal("Scheme3: ser_bef entry for " + ToString(txn) +
                              " without a site list");
    }
  }
  for (const auto& [site, pending] : pending_) {
    for (GlobalTxnId txn : pending) {
      auto it = sites_.find(txn);
      if (it == sites_.end() ||
          std::find(it->second.begin(), it->second.end(), site) ==
              it->second.end()) {
        return Status::Internal("Scheme3: pending " + ToString(txn) +
                                " at " + ToString(site) +
                                " without a matching announcement");
      }
    }
  }
  for (const auto& [site, last] : last_) {
    if (last.valid() && !sites_.contains(last)) {
      return Status::Internal("Scheme3: last ser at " + ToString(site) +
                              " refers to forgotten " + ToString(last));
    }
  }
  for (const auto& [site, history] : released_live_) {
    for (size_t i = 0; i < history.size(); ++i) {
      if (!sites_.contains(history[i])) {
        return Status::Internal("Scheme3: release history at " +
                                ToString(site) + " refers to forgotten " +
                                ToString(history[i]));
      }
      for (size_t j = i + 1; j < history.size(); ++j) {
        if (history[i] == history[j]) {
          return Status::Internal("Scheme3: " + ToString(history[i]) +
                                  " released twice at " + ToString(site));
        }
      }
    }
  }
  return Status::OK();
}

Status Scheme3::AuditSerRelease(GlobalTxnId txn, SiteId site) const {
  auto sb_it = ser_bef_.find(txn);
  if (sb_it == ser_bef_.end()) {
    return Status::Internal("Scheme3: ser(" + ToString(txn) + "@" +
                            ToString(site) + ") released for unknown txn");
  }
  if (pin_acks_) {
    auto last_it = last_.find(site);
    if (last_it != last_.end() && last_it->second.valid() &&
        !acked_.contains({last_it->second.value(), site.value()})) {
      return Status::Internal(
          "Scheme3: ser(" + ToString(txn) + "@" + ToString(site) +
          ") released before the previous ser of " +
          ToString(last_it->second) + " was acked");
    }
  }
  auto pending_it = pending_.find(site);
  if (pending_it != pending_.end()) {
    for (GlobalTxnId other : pending_it->second) {
      if (other != txn && sb_it->second.contains(other)) {
        return Status::Internal(
            "Scheme3: ser(" + ToString(txn) + "@" + ToString(site) +
            ") released although pending " + ToString(other) +
            " is serialized before it");
      }
    }
  }
  return Status::OK();
}

Verdict Scheme3::CondSer(GlobalTxnId txn, SiteId site) {
  AddSteps(1);
  // The previously executed ser operation at this site must be acked so the
  // local execution order matches the processing order.
  if (pin_acks_) {
    auto last_it = last_.find(site);
    if (last_it != last_.end() && last_it->second.valid() &&
        !acked_.contains({last_it->second.value(), site.value()})) {
      return Verdict::kWait;
    }
  }
  // Executing now serializes txn before every pending transaction at the
  // site; that must not contradict an established serialized-before
  // relation.
  const std::set<GlobalTxnId>& sb = ser_bef_.at(txn);
  for (GlobalTxnId other : pending_.at(site)) {
    AddSteps(1);
    if (other == txn) continue;
    if (sb.contains(other)) return Verdict::kWait;
  }
  return Verdict::kReady;
}

void Scheme3::ActSer(GlobalTxnId txn, SiteId site) {
  std::set<GlobalTxnId>& site_pending = pending_.at(site);
  site_pending.erase(txn);
  last_[site] = txn;

  // Set_1 = ser_bef(txn) ∪ {txn} flows into every transaction still pending
  // here and, for transitive closure, into every transaction that already
  // has a pending one in its ser_bef (the paper's Set_2).
  released_live_[site].push_back(txn);
  std::set<GlobalTxnId> set1 = ser_bef_.at(txn);
  set1.insert(txn);
  for (auto& [other, sb] : ser_bef_) {
    if (other == txn) continue;
    bool affected = site_pending.contains(other);
    if (!affected) {
      for (GlobalTxnId member : site_pending) {
        AddSteps(1);
        if (sb.contains(member)) {
          affected = true;
          break;
        }
      }
    }
    if (affected) {
      sb.insert(set1.begin(), set1.end());
      AddSteps(static_cast<int64_t>(set1.size()));
      MDBS_CHECK(!sb.contains(other))
          << other << " serialized before itself (Scheme 3 invariant)";
    }
  }
}

void Scheme3::ActAck(GlobalTxnId txn, SiteId site) {
  AddSteps(1);
  acked_.insert({txn.value(), site.value()});
}

Verdict Scheme3::CondFin(GlobalTxnId txn) {
  AddSteps(1);
  return ser_bef_.at(txn).empty() ? Verdict::kReady : Verdict::kWait;
}

void Scheme3::ActFin(GlobalTxnId txn) { RemoveEverywhere(txn); }

void Scheme3::ActAbortCleanup(GlobalTxnId txn) {
  if (sites_.contains(txn)) RemoveEverywhere(txn);
}

void Scheme3::RemoveEverywhere(GlobalTxnId txn) {
  for (auto& [other, sb] : ser_bef_) {
    AddSteps(1);
    sb.erase(txn);
  }
  for (SiteId site : sites_.at(txn)) {
    AddSteps(1);
    pending_.at(site).erase(txn);
    auto last_it = last_.find(site);
    if (last_it != last_.end() && last_it->second == txn) {
      last_.erase(last_it);
    }
    auto hist_it = released_live_.find(site);
    if (hist_it != released_live_.end()) std::erase(hist_it->second, txn);
    acked_.erase({txn.value(), site.value()});
  }
  ser_bef_.erase(txn);
  sites_.erase(txn);
}

const std::set<GlobalTxnId>& Scheme3::SerBef(GlobalTxnId txn) const {
  static const std::set<GlobalTxnId>& empty =
      *new std::set<GlobalTxnId>();
  auto it = ser_bef_.find(txn);
  return it == ser_bef_.end() ? empty : it->second;
}


namespace {

/// Sorted keys of an unordered map — the deterministic iteration order the
/// snapshot encoding needs.
template <typename Map>
std::vector<typename Map::key_type> SortedKeys(const Map& map) {
  std::vector<typename Map::key_type> keys;
  keys.reserve(map.size());
  for (const auto& [key, value] : map) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace

void Scheme3::EncodeState(std::vector<uint8_t>* out) const {
  storage::PutU8(out, pin_acks_ ? 1 : 0);
  storage::PutU32(out, static_cast<uint32_t>(ser_bef_.size()));
  for (GlobalTxnId txn : SortedKeys(ser_bef_)) {
    const std::set<GlobalTxnId>& sb = ser_bef_.at(txn);
    storage::PutI64(out, txn.value());
    storage::PutU32(out, static_cast<uint32_t>(sb.size()));
    for (GlobalTxnId other : sb) storage::PutI64(out, other.value());
  }
  storage::PutU32(out, static_cast<uint32_t>(sites_.size()));
  for (GlobalTxnId txn : SortedKeys(sites_)) {
    const std::vector<SiteId>& txn_sites = sites_.at(txn);
    storage::PutI64(out, txn.value());
    storage::PutU32(out, static_cast<uint32_t>(txn_sites.size()));
    for (SiteId site : txn_sites) storage::PutI64(out, site.value());
  }
  storage::PutU32(out, static_cast<uint32_t>(last_.size()));
  for (SiteId site : SortedKeys(last_)) {
    storage::PutI64(out, site.value());
    storage::PutI64(out, last_.at(site).value());
  }
  storage::PutU32(out, static_cast<uint32_t>(released_live_.size()));
  for (SiteId site : SortedKeys(released_live_)) {
    const std::vector<GlobalTxnId>& history = released_live_.at(site);
    storage::PutI64(out, site.value());
    storage::PutU32(out, static_cast<uint32_t>(history.size()));
    for (GlobalTxnId txn : history) storage::PutI64(out, txn.value());
  }
  storage::PutU32(out, static_cast<uint32_t>(pending_.size()));
  for (SiteId site : SortedKeys(pending_)) {
    const std::set<GlobalTxnId>& set = pending_.at(site);
    storage::PutI64(out, site.value());
    storage::PutU32(out, static_cast<uint32_t>(set.size()));
    for (GlobalTxnId txn : set) storage::PutI64(out, txn.value());
  }
  storage::PutU32(out, static_cast<uint32_t>(acked_.size()));
  for (const auto& [txn, site] : acked_) {
    storage::PutI64(out, txn);
    storage::PutI64(out, site);
  }
}

bool Scheme3::DecodeState(const uint8_t* data, size_t size) {
  storage::Cursor c(data, size);
  if (c.U8() != (pin_acks_ ? 1 : 0)) return false;
  ser_bef_.clear();
  sites_.clear();
  last_.clear();
  released_live_.clear();
  pending_.clear();
  acked_.clear();
  uint32_t n_ser_bef = c.U32();
  if (!c.ok()) return false;
  for (uint32_t i = 0; i < n_ser_bef && c.ok(); ++i) {
    GlobalTxnId txn(c.I64());
    uint32_t n = c.U32();
    if (!c.ok()) return false;
    std::set<GlobalTxnId>& sb = ser_bef_[txn];
    for (uint32_t j = 0; j < n && c.ok(); ++j) {
      sb.insert(GlobalTxnId(c.I64()));
    }
  }
  uint32_t n_sites = c.U32();
  if (!c.ok()) return false;
  for (uint32_t i = 0; i < n_sites && c.ok(); ++i) {
    GlobalTxnId txn(c.I64());
    uint32_t n = c.U32();
    if (!c.ok()) return false;
    std::vector<SiteId>& txn_sites = sites_[txn];
    txn_sites.reserve(n);
    for (uint32_t j = 0; j < n && c.ok(); ++j) {
      txn_sites.push_back(SiteId(c.I64()));
    }
  }
  uint32_t n_last = c.U32();
  if (!c.ok()) return false;
  for (uint32_t i = 0; i < n_last && c.ok(); ++i) {
    SiteId site(c.I64());
    last_.insert({site, GlobalTxnId(c.I64())});
  }
  uint32_t n_released = c.U32();
  if (!c.ok()) return false;
  for (uint32_t i = 0; i < n_released && c.ok(); ++i) {
    SiteId site(c.I64());
    uint32_t n = c.U32();
    if (!c.ok()) return false;
    std::vector<GlobalTxnId>& history = released_live_[site];
    history.reserve(n);
    for (uint32_t j = 0; j < n && c.ok(); ++j) {
      history.push_back(GlobalTxnId(c.I64()));
    }
  }
  uint32_t n_pending = c.U32();
  if (!c.ok()) return false;
  for (uint32_t i = 0; i < n_pending && c.ok(); ++i) {
    SiteId site(c.I64());
    uint32_t n = c.U32();
    if (!c.ok()) return false;
    std::set<GlobalTxnId>& set = pending_[site];
    for (uint32_t j = 0; j < n && c.ok(); ++j) {
      set.insert(GlobalTxnId(c.I64()));
    }
  }
  uint32_t n_acked = c.U32();
  if (!c.ok()) return false;
  for (uint32_t i = 0; i < n_acked && c.ok(); ++i) {
    int64_t txn = c.I64();
    int64_t site = c.I64();
    acked_.insert({txn, site});
  }
  return c.ok() && c.exhausted();
}

}  // namespace mdbs::gtm
