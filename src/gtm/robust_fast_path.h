#ifndef MDBS_GTM_ROBUST_FAST_PATH_H_
#define MDBS_GTM_ROBUST_FAST_PATH_H_

#include <memory>

#include "gtm/scheme.h"

namespace mdbs::gtm {

/// The certified fast path (src/analysis): installed when the static
/// analyzer proved the declared transaction mix conflict-robust, i.e.
/// globally serializable with no GTM control at all. GTM1 then bypasses
/// GTM2 for ser operations and skips ticket injection entirely
/// (Gtm1Config::certified_fast_path), so this scheme sees only
/// init/validate/fin and maintains no data structures — zero steps, zero
/// waiting.
///
/// It reports the scheme kind it replaced (`certified_as`) rather than
/// kNone on purpose: Mdbs::RunAuditOracle skips the global-CSR check for
/// kNone, and the whole point of the downgrade contract is that the oracle
/// stays on as the runtime cross-check of the analyzer's certificate.
class RobustFastPath : public ConservativeSchemeBase {
 public:
  explicit RobustFastPath(SchemeKind certified_as)
      : certified_as_(certified_as) {}

  SchemeKind kind() const override { return certified_as_; }
  const char* Name() const override { return "RobustFastPath"; }

  void ActInit(const QueueOp&) override {}
  Verdict CondSer(GlobalTxnId, SiteId) override { return Verdict::kReady; }
  void ActSer(GlobalTxnId, SiteId) override {}
  void ActAck(GlobalTxnId, SiteId) override {}
  Verdict CondFin(GlobalTxnId) override { return Verdict::kReady; }
  void ActFin(GlobalTxnId) override {}
  void ActAbortCleanup(GlobalTxnId) override {}

  /// Never aborts; the certificate (not a DS) guarantees acyclic ser(S).
  bool IsConservative() const override { return true; }

  /// Stateless, so the base's empty encoding is the whole snapshot — the
  /// durable GTM can crash and recover under the certified fast path.
  bool SupportsSnapshot() const override { return true; }

 private:
  SchemeKind certified_as_;
};

/// Factory for Gtm1Config::scheme_factory.
std::unique_ptr<Scheme> MakeRobustFastPath(SchemeKind certified_as);

}  // namespace mdbs::gtm

#endif  // MDBS_GTM_ROBUST_FAST_PATH_H_
