#ifndef MDBS_GTM_BASELINES_H_
#define MDBS_GTM_BASELINES_H_

#include <deque>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "gtm/scheme.h"

namespace mdbs::gtm {

/// The non-conservative *optimistic ticket method* baseline (in the spirit
/// of [GRS91], which the paper contrasts with its conservative schemes in
/// §3(1)). Ser operations are released immediately — maximum optimism, no
/// waiting. The GTM observes the per-site completion (ack) order of ser
/// operations, accumulates it in a global order graph, and certifies each
/// transaction at its pre-commit validation point: if the transaction lies
/// on a cycle, it is aborted and retried by GTM1. Experiment E5 measures
/// the abort rate this trades for the avoided waiting.
class TicketOptimistic : public Scheme {
 public:
  SchemeKind kind() const override { return SchemeKind::kTicketOptimistic; }
  const char* Name() const override { return "TicketOptimistic"; }

  Verdict CondInit(const QueueOp&) override { return Verdict::kReady; }
  void ActInit(const QueueOp& op) override;
  Verdict CondSer(GlobalTxnId, SiteId) override { return Verdict::kReady; }
  void ActSer(GlobalTxnId, SiteId) override {}
  Verdict CondAck(GlobalTxnId, SiteId) override { return Verdict::kReady; }
  void ActAck(GlobalTxnId txn, SiteId site) override;
  Verdict CondValidate(GlobalTxnId txn) override;
  void ActValidate(GlobalTxnId) override {}
  Verdict CondFin(GlobalTxnId) override { return Verdict::kReady; }
  void ActFin(GlobalTxnId txn) override;
  void ActAbortCleanup(GlobalTxnId txn) override;

 private:
  struct Node {
    bool finished = false;
    std::unordered_set<GlobalTxnId> out;
    std::unordered_set<GlobalTxnId> in;
  };

  bool Reaches(GlobalTxnId from, GlobalTxnId to) const;
  void RemoveNode(GlobalTxnId txn);
  void CollectGarbage();

  std::unordered_map<GlobalTxnId, Node> nodes_;
  /// Per-site ack order; edges link each ack to the most recent *live*
  /// predecessor so that removing aborted attempts cannot break the chain.
  std::unordered_map<SiteId, std::vector<GlobalTxnId>> ack_history_;
};

/// Naive conservative 2PL on ser(S) (experiment E7): every pair of ser
/// operations at a site conflicts (paper §3), so treat each site as one
/// exclusive lock held from the first ser execution until fin. Deadlocks —
/// which §3(1) predicts are frequent — surface as kAbort at cond(ser).
class NaiveTwoPhase : public ConservativeSchemeBase {
 public:
  SchemeKind kind() const override { return SchemeKind::kNone; }
  const char* Name() const override { return "Naive2PL"; }

  void ActInit(const QueueOp& op) override;
  Verdict CondSer(GlobalTxnId txn, SiteId site) override;
  void ActSer(GlobalTxnId txn, SiteId site) override;
  void ActAck(GlobalTxnId, SiteId) override {}
  Verdict CondFin(GlobalTxnId) override { return Verdict::kReady; }
  void ActFin(GlobalTxnId txn) override;
  void ActAbortCleanup(GlobalTxnId txn) override;

 private:
  bool WouldDeadlock(GlobalTxnId requester, SiteId site) const;

  std::unordered_map<GlobalTxnId, std::vector<SiteId>> sites_;
  std::unordered_map<SiteId, GlobalTxnId> holder_;
  std::unordered_map<SiteId, std::deque<GlobalTxnId>> waiters_;
  std::unordered_map<GlobalTxnId, SiteId> waiting_on_;
};

/// Naive TO on ser(S) (experiment E7): transactions are timestamped in init
/// order; a ser operation arriving at a site "late" (a younger transaction
/// already executed there) aborts its transaction, as basic TO would.
class NaiveTimestamp : public ConservativeSchemeBase {
 public:
  SchemeKind kind() const override { return SchemeKind::kNone; }
  const char* Name() const override { return "NaiveTO"; }

  void ActInit(const QueueOp& op) override;
  Verdict CondSer(GlobalTxnId txn, SiteId site) override;
  void ActSer(GlobalTxnId txn, SiteId site) override;
  void ActAck(GlobalTxnId txn, SiteId site) override;
  Verdict CondFin(GlobalTxnId) override { return Verdict::kReady; }
  void ActFin(GlobalTxnId txn) override;
  void ActAbortCleanup(GlobalTxnId txn) override;

 private:
  int64_t next_ts_ = 0;
  std::unordered_map<GlobalTxnId, int64_t> ts_;
  std::unordered_map<SiteId, int64_t> max_executed_ts_;
  /// Executed-but-unacked ser per site: the physical pin.
  std::unordered_map<SiteId, std::optional<GlobalTxnId>> executing_;
};

}  // namespace mdbs::gtm

#endif  // MDBS_GTM_BASELINES_H_
