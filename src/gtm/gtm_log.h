#ifndef MDBS_GTM_GTM_LOG_H_
#define MDBS_GTM_GTM_LOG_H_

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "gtm/gtm1.h"
#include "gtm/gtm2.h"
#include "gtm/queue_op.h"
#include "storage/framing.h"
#include "storage/log_device.h"

namespace mdbs::gtm {

/// Record types of the GTM write-ahead log. The log captures every GTM
/// state transition that recovery needs: job admission, attempt lifecycle,
/// sub-transaction creation, every GTM2 mutation (enqueue / abort cleanup —
/// the scheme DS and WAIT are deterministic functions of that sequence),
/// commit progress for forward-rolling, and quarantine churn. What is
/// deliberately NOT logged: site responses other than reads (recovery
/// aborts non-committing attempts instead of resuming mid-step), and the
/// audit layer's ser(S) graph (an under-approximation after recovery is
/// safe — fewer edges can only miss, never fabricate, a cycle).
enum class GtmLogRecordType : uint8_t {
  kSubmit = 1,        // job admitted; time = submit tick
  kAttemptStart = 2,  // attempt created; index = 1-based attempt number
  kBeginSite = 3,     // sub-transaction allocated for (attempt, site)
  kRead = 4,          // data-op read observed (site, item, value)
  kEnqueue = 5,       // GTM2 enqueue; code = QueueOpKind, sites for kInit
  kAbortCleanup = 6,  // GTM2 purge of a dead attempt
  kAttemptFail = 7,   // attempt retired; code = GtmAttemptFailReason
  kCommitStart = 8,   // validation passed, commit fan-out begins
  kCommitSite = 9,    // site #index committed (acked)
  kFinish = 10,       // job finished; code = GtmFinishOutcome, index = attempts
  kPark = 11,         // job parked on a quarantined site
  kUnpark = 12,       // parked job resumed
  kSiteDown = 13,     // health monitor quarantined `site`
  kSiteUp = 14,       // quarantine lifted
  kCheckpoint = 15,   // full snapshot; replay restarts here
};

const char* GtmLogRecordTypeName(GtmLogRecordType type);

/// Reason byte of a kAttemptFail record; mirrors the Gtm1Stats taxonomy so
/// replay reconstructs the counters exactly.
enum class GtmAttemptFailReason : uint8_t {
  kSite = 0,      // local DBMS abort / site error
  kScheme = 1,    // non-conservative scheme demanded the abort
  kTimeout = 2,   // per-attempt timeout fired
  kSiteDown = 3,  // site-down declaration doomed the attempt
  kGtmCrash = 4,  // in flight across a GTM crash; aborted at recovery
};

/// Outcome byte of a kFinish record.
enum class GtmFinishOutcome : uint8_t {
  kCommitted = 0,
  kGaveUp = 1,       // max_attempts exhausted
  kPartial = 2,      // partial commit; resubmission is unsafe
  kParkTimeout = 3,  // failed back while parked on a quarantined site
};

/// Checkpoint image: the complete durable GTM state at one log position.
/// Everything is encoded in deterministic (sorted / insertion) order so a
/// checkpoint taken at the same logical point always produces identical
/// bytes — the determinism battery depends on it.
struct GtmCheckpoint {
  struct JobImage {
    int64_t id = -1;
    int64_t submit_time = 0;
    int64_t attempts = 0;
    /// Live attempt id, -1 when the job is parked or in backoff.
    int64_t current_attempt = -1;
    bool parked = false;
  };
  struct AttemptImage {
    int64_t id = -1;
    int64_t job = -1;
    bool committing = false;
    /// Next site index to commit (committing attempts only).
    int64_t commit_index = 0;
    /// (site, sub-txn) in begin order.
    std::vector<std::pair<int64_t, int64_t>> subs;
    /// (site, item, value) sorted by (site, item).
    std::vector<std::array<int64_t, 3>> reads;
  };

  int64_t next_txn_id = 0;
  int64_t next_attempt_id = 0;
  int64_t next_job_id = 0;
  Gtm1Stats gtm1_stats;
  std::vector<JobImage> jobs;          // sorted by id
  std::vector<AttemptImage> attempts;  // sorted by id
  std::vector<int64_t> quarantined;    // sorted

  // GTM2 volatile image (QUEUE is empty at every strand-turn boundary, so
  // only WAIT, the dead set, the counters and the scheme DS are captured).
  std::vector<QueueOp> wait;       // in WAIT order
  std::vector<int64_t> dead_txns;  // sorted
  Gtm2Stats gtm2_stats;
  int64_t scheme_steps = 0;
  std::vector<uint8_t> scheme_state;
};

/// One GTM WAL record. Field use depends on `type` (see the enum); unused
/// fields keep their defaults and are not encoded.
struct GtmLogRecord {
  GtmLogRecordType type = GtmLogRecordType::kSubmit;
  int64_t job = -1;
  int64_t attempt = -1;
  int64_t site = -1;
  int64_t sub = -1;
  int64_t item = 0;
  int64_t value = 0;
  /// kAttemptStart: attempt number; kCommitSite: committed site index;
  /// kFinish: attempts used.
  int64_t index = 0;
  /// kEnqueue: QueueOpKind; kAttemptFail: GtmAttemptFailReason; kFinish:
  /// GtmFinishOutcome.
  uint8_t code = 0;
  /// kSubmit: submit tick.
  int64_t time = 0;
  /// kEnqueue(kInit): the announced site set, in announcement order.
  std::vector<int64_t> sites;
  /// kCheckpoint only.
  GtmCheckpoint checkpoint;
};

/// Encodes one record as a CRC-framed log frame (storage/framing.h — the
/// same framing the per-site WAL uses, with the GTM record schema inside).
std::vector<uint8_t> EncodeGtmLogRecord(const GtmLogRecord& record);

/// Decodes one frame payload (the bytes between the CRC header and the next
/// frame). Returns false on a structurally invalid payload. Public because
/// the warm standby decodes shipped frames one at a time, outside
/// ReadGtmLog's whole-device path.
bool DecodeGtmLogPayload(const uint8_t* data, size_t size,
                         GtmLogRecord* record);

/// Result of scanning a GTM log image.
struct GtmLogScan {
  std::vector<GtmLogRecord> records;
  /// Bytes covered by complete, CRC-valid frames.
  size_t valid_bytes = 0;
  /// True when the image ends in an incomplete frame (torn tail — the
  /// crash interrupted an append). The tail is ignored, not an error.
  bool torn_tail = false;
};

/// Reads and decodes the device's whole image. CRC mismatches in the
/// interior and undecodable payloads are hard errors (corruption, not a
/// torn append).
Status ReadGtmLog(storage::LogDevice& device, GtmLogScan* out);

/// Appends GTM records through the shared frame writer. A kCheckpoint
/// append resets records_since_checkpoint().
class GtmLogWriter {
 public:
  /// Shipping tap for the warm standby: called synchronously after every
  /// durable append with the record's log position (0-based, assuming the
  /// device started empty) and its CRC-framed bytes. Implementations
  /// re-post the frame across the modeled network; the callback itself
  /// runs on the GTM strand and must not re-enter the writer.
  using Shipper = std::function<void(int64_t seq, std::vector<uint8_t> frame)>;

  explicit GtmLogWriter(storage::LogDevice* device) : frames_(device) {}

  GtmLogWriter(const GtmLogWriter&) = delete;
  GtmLogWriter& operator=(const GtmLogWriter&) = delete;

  void SetShipper(Shipper shipper) { shipper_ = std::move(shipper); }

  /// Replaces the sync policy (default: every commit point). GTM commit
  /// points are kCommitStart, kFinish and kCheckpoint — the records whose
  /// loss would lose an acknowledged global decision.
  void SetSyncConfig(const storage::WalSyncConfig& config) {
    frames_.SetSyncConfig(config);
  }

  void Append(const GtmLogRecord& record);

  int64_t records_written() const { return frames_.records_written(); }
  int64_t bytes_written() const { return frames_.bytes_written(); }
  int64_t records_since_checkpoint() const {
    return frames_.records_since_checkpoint();
  }
  /// Sync barriers forced by the policy so far.
  int64_t syncs() const { return frames_.syncs(); }

 private:
  storage::FrameWriter frames_;
  Shipper shipper_;
};

/// State derived from a (possibly truncated) GTM log: the latest
/// checkpoint, fast-forwarded through the suffix. Pure function of the
/// record sequence — the crash-point fuzz battery runs it over every
/// prefix.
struct GtmLogAnalysis {
  int64_t next_txn_id = 0;
  int64_t next_attempt_id = 0;
  int64_t next_job_id = 0;
  Gtm1Stats stats;
  /// Unfinished jobs, keyed by id (ordered — recovery resumes in id order).
  std::map<int64_t, GtmCheckpoint::JobImage> jobs;
  /// Live (not failed, not finished) attempts, keyed by id.
  std::map<int64_t, GtmCheckpoint::AttemptImage> attempts;
  /// Quarantine set as of the log end (sorted). Recovery supersedes it
  /// with the health monitor's current view; the fuzz oracle checks it.
  std::vector<int64_t> quarantined;
  /// Index of the latest kCheckpoint record, or npos.
  static constexpr size_t kNoCheckpoint = static_cast<size_t>(-1);
  size_t checkpoint_index = kNoCheckpoint;
  /// Indices of kEnqueue / kAbortCleanup records after the checkpoint, in
  /// log order: replaying them through a checkpoint-restored GTM2
  /// reproduces the exact pre-crash WAIT / dead-set / scheme DS state.
  std::vector<size_t> gtm2_replay;
};

Status AnalyzeGtmLog(const std::vector<GtmLogRecord>& records,
                     GtmLogAnalysis* out);

/// Incremental form of AnalyzeGtmLog: feed records one at a time and read
/// the running analysis at any point. The warm standby applies shipped
/// frames through this as they arrive, so promotion only has to analyze the
/// unshipped tail; AnalyzeGtmLog itself is a loop over Apply.
class GtmLogReplayer {
 public:
  GtmLogReplayer() = default;

  /// Applies the record at log position `index` to the running analysis.
  /// Structurally impossible sequences (references to unknown jobs or
  /// attempts) are corruption — a non-OK status, exactly as AnalyzeGtmLog
  /// reports them.
  Status Apply(const GtmLogRecord& record, size_t index);

  const GtmLogAnalysis& analysis() const { return analysis_; }
  GtmLogAnalysis* mutable_analysis() { return &analysis_; }

 private:
  GtmLogAnalysis analysis_;
};

}  // namespace mdbs::gtm

#endif  // MDBS_GTM_GTM_LOG_H_
