#ifndef MDBS_GTM_SCHEME1_H_
#define MDBS_GTM_SCHEME1_H_

#include <deque>
#include <optional>
#include <unordered_map>

#include "gtm/scheme.h"
#include "gtm/tsg.h"

namespace mdbs::gtm {

/// Scheme 1, the transaction-site graph scheme (paper §5). A BT-scheme:
/// when init_i is processed, every edge (G̃_i, s_k) that lies on a TSG cycle
/// gets its ser operation *marked*; marked operations may execute only at
/// the front of their site's insert queue, so potentially-conflicting
/// transactions serialize in init order at each shared site, while
/// unmarked operations run unconstrained. Acked operations move to a
/// per-site delete queue; fin_i waits until the transaction heads every one
/// of its delete queues, which keeps removals consistent with the
/// serialization order. Complexity O(m + n + n*dav) per transaction
/// (Theorem 4), dominated by cycle detection.
class Scheme1 : public ConservativeSchemeBase {
 public:
  /// `mark_all` is an ablation switch: mark *every* operation regardless of
  /// TSG cycles, degenerating to per-site init-order FIFO (≈ Scheme 0 with
  /// TSG bookkeeping). Quantifies what the cycle test buys (bench E8).
  explicit Scheme1(bool mark_all = false) : mark_all_(mark_all) {}

  SchemeKind kind() const override { return SchemeKind::kScheme1; }
  const char* Name() const override {
    return mark_all_ ? "Scheme1-markall" : "Scheme1-TSG";
  }
  bool IsConservative() const override { return true; }

  Status CheckStructuralInvariants() const override;
  Status AuditSerRelease(GlobalTxnId txn, SiteId site) const override;

  bool SupportsSnapshot() const override { return true; }
  void EncodeState(std::vector<uint8_t>* out) const override;
  bool DecodeState(const uint8_t* data, size_t size) override;

  void ActInit(const QueueOp& op) override;
  Verdict CondSer(GlobalTxnId txn, SiteId site) override;
  void ActSer(GlobalTxnId txn, SiteId site) override;
  void ActAck(GlobalTxnId txn, SiteId site) override;
  Verdict CondFin(GlobalTxnId txn) override;
  void ActFin(GlobalTxnId txn) override;
  void ActAbortCleanup(GlobalTxnId txn) override;

  const TransactionSiteGraph& tsg() const { return tsg_; }

  /// True when ser(txn@site) was marked at init (tests).
  bool IsMarked(GlobalTxnId txn, SiteId site) const;

 private:
  struct InsertEntry {
    GlobalTxnId txn;
    bool marked = false;
  };
  struct SiteState {
    std::deque<InsertEntry> insert_queue;
    std::deque<GlobalTxnId> delete_queue;
    /// Ser operation executed but not yet acked, if any.
    std::optional<GlobalTxnId> executing;
  };

  SiteState& StateOf(SiteId site) { return sites_[site]; }

  bool mark_all_;
  TransactionSiteGraph tsg_;
  std::unordered_map<SiteId, SiteState> sites_;
};

}  // namespace mdbs::gtm

#endif  // MDBS_GTM_SCHEME1_H_
