#ifndef MDBS_GTM_SCHEME_H_
#define MDBS_GTM_SCHEME_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "gtm/queue_op.h"
#include "obs/trace.h"

namespace mdbs::gtm {

/// Verdict of a scheme's cond() on a queue operation.
enum class Verdict {
  /// cond holds: the driver executes act() now.
  kReady,
  /// cond does not hold: the operation joins WAIT (paper Figure 3).
  kWait,
  /// The scheme demands aborting the global transaction. Conservative
  /// schemes — the paper's Schemes 0-3 — never return this; only the
  /// non-conservative baselines do.
  kAbort,
};

/// Which scheme a GTM runs; used for construction and reporting.
enum class SchemeKind {
  kScheme0,           // per-site FIFO queues (conservative-TO-like), §4
  kScheme1,           // transaction-site graph, §5
  kScheme2,           // TSG with dependencies + Eliminate_Cycles, §6
  kScheme3,           // O-scheme admitting all serializable schedules, §7
  kTicketOptimistic,  // non-conservative baseline (GRS91-style), aborts
  kNone,              // no global control: ser ops released immediately
};

const char* SchemeKindName(SchemeKind kind);

/// A GTM2 concurrency control scheme in the paper's cond/act formulation
/// (§4): the driver (Gtm2) selects operations from QUEUE, evaluates Cond,
/// and on kReady executes Act. Schemes only manipulate their own data
/// structures (the paper's DS); submitting released operations to sites and
/// forwarding acks is the driver's job.
///
/// Every scheme counts the abstract "steps" its cond/act evaluations take
/// (nodes visited, set elements touched); the complexity experiments (E1)
/// read this counter to reproduce Theorems 4, 6 and 9.
class Scheme {
 public:
  virtual ~Scheme() = default;

  virtual SchemeKind kind() const = 0;
  virtual const char* Name() const = 0;

  virtual Verdict CondInit(const QueueOp& op) = 0;
  virtual void ActInit(const QueueOp& op) = 0;

  virtual Verdict CondSer(GlobalTxnId txn, SiteId site) = 0;
  virtual void ActSer(GlobalTxnId txn, SiteId site) = 0;

  virtual Verdict CondAck(GlobalTxnId txn, SiteId site) = 0;
  virtual void ActAck(GlobalTxnId txn, SiteId site) = 0;

  virtual Verdict CondValidate(GlobalTxnId txn) = 0;
  virtual void ActValidate(GlobalTxnId txn) = 0;

  virtual Verdict CondFin(GlobalTxnId txn) = 0;
  virtual void ActFin(GlobalTxnId txn) = 0;

  /// Removes every trace of an aborted transaction from DS. Not part of the
  /// paper's model (conservative schemes never abort); needed because local
  /// DBMSs may abort a subtransaction (deadlock victim, validation failure)
  /// and GTM1 then retires the whole attempt.
  virtual void ActAbortCleanup(GlobalTxnId txn) = 0;

  // -------------------------------------------------------------------
  // Invariant-audit surface (src/audit). These re-derive the scheme's
  // guarantees from its data structures, independently of Cond/Act, and
  // must never call AddSteps — the complexity experiments meter only the
  // scheme's own work.
  // -------------------------------------------------------------------

  /// True for the paper's conservative schemes (Theorems 3, 5, 8): the
  /// scheme never returns kAbort and guarantees an acyclic ser(S) graph.
  /// The audit layer enforces both only when this holds; non-conservative
  /// baselines legitimately abort and legitimately create cycles.
  virtual bool IsConservative() const { return false; }

  /// Structural self-check of DS: internal cross-references consistent,
  /// graphs well-formed (TSG bipartite bookkeeping, TSGD dependency
  /// digraph acyclic, ser_bef irreflexive, ...). Run by the audited driver
  /// after every act.
  virtual Status CheckStructuralInvariants() const { return Status::OK(); }

  /// Re-verifies, at act(ser) time, that releasing ser(txn @ site) now
  /// respects the scheme's release discipline — i.e. cond genuinely holds
  /// for the operation the driver is about to release.
  virtual Status AuditSerRelease(GlobalTxnId txn, SiteId site) const {
    (void)txn;
    (void)site;
    return Status::OK();
  }

  // -------------------------------------------------------------------
  // Durability surface (src/gtm/gtm_log). A durable GTM snapshots the
  // scheme's DS into its checkpoint records and rebuilds it on recovery;
  // between checkpoints the logged enqueue sequence is replayed through a
  // fresh Gtm2, so schemes must be deterministic functions of it (the
  // paper's Schemes 0-3 are).
  // -------------------------------------------------------------------

  /// True when the scheme implements EncodeState/DecodeState. The durable
  /// GTM refuses to run — loudly, at configuration time — with a scheme
  /// that cannot be snapshotted.
  virtual bool SupportsSnapshot() const { return false; }

  /// Serializes the scheme's DS into `out`, deterministically (sorted
  /// iteration orders), using the little-endian storage primitives. The
  /// encoding doubles as the recovery tests' structural fingerprint.
  virtual void EncodeState(std::vector<uint8_t>* out) const { (void)out; }

  /// Rebuilds DS from an EncodeState image. Returns false on a malformed
  /// image (recovery must fail loudly, never silently diverge).
  virtual bool DecodeState(const uint8_t* data, size_t size) {
    (void)data;
    return size == 0;
  }

  /// Abstract step counter for the complexity experiments.
  int64_t steps() const { return steps_; }
  void ResetSteps() { steps_ = 0; }
  /// Restores the step counter from a GTM checkpoint image.
  void RestoreSteps(int64_t steps) { steps_ = steps; }

  /// Records scheme data-structure churn (marked edges, dependencies,
  /// ser_bef seeding) into `sink`; nullptr disables. Set by the driver.
  void EnableTrace(obs::TraceSink* sink) { trace_ = sink; }

 protected:
  void AddSteps(int64_t n) { steps_ += n; }

  /// Trace sink for DS events, or nullptr. Never dereference without a
  /// null check; acts must stay cheap when tracing is off.
  obs::TraceSink* trace_ = nullptr;

 private:
  int64_t steps_ = 0;
};

/// Base with the common defaults: init/ack/validate are unconditional and
/// validation is a no-op, as in all of the paper's conservative schemes.
class ConservativeSchemeBase : public Scheme {
 public:
  Verdict CondInit(const QueueOp&) override { return Verdict::kReady; }
  Verdict CondAck(GlobalTxnId, SiteId) override { return Verdict::kReady; }
  Verdict CondValidate(GlobalTxnId) override { return Verdict::kReady; }
  void ActValidate(GlobalTxnId) override {}
};

}  // namespace mdbs::gtm

#endif  // MDBS_GTM_SCHEME_H_
