#include "gtm/scheme1.h"

#include <algorithm>

#include "common/logging.h"
#include "storage/framing.h"

namespace mdbs::gtm {

void Scheme1::ActInit(const QueueOp& op) {
  tsg_.InsertTxn(op.txn, op.sites);
  for (SiteId site : op.sites) {
    bool marked = true;
    if (!mark_all_) {
      int64_t steps = 0;
      marked = tsg_.EdgeOnCycle(op.txn, site, &steps);
      AddSteps(steps);
    }
    AddSteps(1);
    if (marked && trace_ != nullptr) {
      trace_->Record(obs::TraceEventKind::kEdgeMark, op.txn.value(),
                     site.value());
    }
    StateOf(site).insert_queue.push_back(InsertEntry{op.txn, marked});
  }
}

Verdict Scheme1::CondSer(GlobalTxnId txn, SiteId site) {
  SiteState& state = StateOf(site);
  // No executed-but-unacked ser operation may be outstanding at the site.
  AddSteps(1);
  if (state.executing.has_value()) return Verdict::kWait;
  // A marked operation must additionally head the insert queue.
  for (const InsertEntry& entry : state.insert_queue) {
    AddSteps(1);
    if (entry.txn != txn) continue;
    if (entry.marked && state.insert_queue.front().txn != txn) {
      return Verdict::kWait;
    }
    return Verdict::kReady;
  }
  MDBS_CHECK(false) << "ser for " << txn << " not in insert queue of "
                    << site;
  return Verdict::kWait;
}

void Scheme1::ActSer(GlobalTxnId txn, SiteId site) {
  AddSteps(1);
  StateOf(site).executing = txn;
}

void Scheme1::ActAck(GlobalTxnId txn, SiteId site) {
  SiteState& state = StateOf(site);
  auto& queue = state.insert_queue;
  auto it = std::find_if(queue.begin(), queue.end(), [txn](
                                                         const InsertEntry&
                                                             entry) {
    return entry.txn == txn;
  });
  MDBS_CHECK(it != queue.end())
      << "ack for " << txn << " not in insert queue of " << site;
  AddSteps(static_cast<int64_t>(std::distance(queue.begin(), it)) + 1);
  if (it->marked && trace_ != nullptr) {
    trace_->Record(obs::TraceEventKind::kEdgeUnmark, txn.value(),
                   site.value());
  }
  queue.erase(it);
  state.delete_queue.push_back(txn);
  MDBS_CHECK(state.executing == txn)
      << "ack for " << txn << " but executing is different at " << site;
  state.executing.reset();
}

Verdict Scheme1::CondFin(GlobalTxnId txn) {
  for (SiteId site : tsg_.SitesOf(txn)) {
    AddSteps(1);
    const SiteState& state = sites_.at(site);
    if (state.delete_queue.empty() || state.delete_queue.front() != txn) {
      return Verdict::kWait;
    }
  }
  return Verdict::kReady;
}

void Scheme1::ActFin(GlobalTxnId txn) {
  // Copy: RemoveTxn below invalidates SitesOf's storage.
  std::vector<SiteId> sites = tsg_.SitesOf(txn);
  for (SiteId site : sites) {
    SiteState& state = StateOf(site);
    MDBS_CHECK(!state.delete_queue.empty() &&
               state.delete_queue.front() == txn)
        << "fin for " << txn << " not heading delete queue of " << site;
    state.delete_queue.pop_front();
    AddSteps(1);
  }
  tsg_.RemoveTxn(txn);
}

void Scheme1::ActAbortCleanup(GlobalTxnId txn) {
  std::vector<SiteId> sites = tsg_.SitesOf(txn);
  for (SiteId site : sites) {
    SiteState& state = StateOf(site);
    auto& queue = state.insert_queue;
    queue.erase(std::remove_if(queue.begin(), queue.end(),
                               [this, txn, site](const InsertEntry& entry) {
                                 if (entry.txn != txn) return false;
                                 if (entry.marked && trace_ != nullptr) {
                                   trace_->Record(
                                       obs::TraceEventKind::kEdgeUnmark,
                                       txn.value(), site.value());
                                 }
                                 return true;
                               }),
                queue.end());
    auto& dq = state.delete_queue;
    dq.erase(std::remove(dq.begin(), dq.end(), txn), dq.end());
    if (state.executing == txn) state.executing.reset();
  }
  tsg_.RemoveTxn(txn);
}

Status Scheme1::CheckStructuralInvariants() const {
  MDBS_RETURN_IF_ERROR(tsg_.Validate());
  for (const auto& [site, state] : sites_) {
    std::unordered_map<GlobalTxnId, int> seen;
    for (const InsertEntry& entry : state.insert_queue) {
      if (++seen[entry.txn] > 1) {
        return Status::Internal("Scheme1: " + ToString(entry.txn) +
                                " twice in insert queue of " +
                                ToString(site));
      }
      // Queue entries are in the TSG until fin/abort removes both.
      if (!tsg_.HasTxn(entry.txn)) {
        return Status::Internal("Scheme1: " + ToString(entry.txn) +
                                " queued at " + ToString(site) +
                                " but absent from the TSG");
      }
    }
    for (GlobalTxnId txn : state.delete_queue) {
      if (!tsg_.HasTxn(txn)) {
        return Status::Internal("Scheme1: " + ToString(txn) +
                                " in delete queue of " + ToString(site) +
                                " but absent from the TSG");
      }
    }
    // An executing (released, unacked) ser still occupies the insert queue.
    if (state.executing.has_value() &&
        !seen.contains(*state.executing)) {
      return Status::Internal("Scheme1: executing " +
                              ToString(*state.executing) + " at " +
                              ToString(site) +
                              " missing from the insert queue");
    }
  }
  return Status::OK();
}

Status Scheme1::AuditSerRelease(GlobalTxnId txn, SiteId site) const {
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    return Status::Internal("Scheme1: ser(" + ToString(txn) + "@" +
                            ToString(site) + ") released at unknown site");
  }
  const SiteState& state = it->second;
  if (state.executing.has_value() && *state.executing != txn) {
    return Status::Internal(
        "Scheme1: ser(" + ToString(txn) + "@" + ToString(site) +
        ") released while " + ToString(*state.executing) +
        " is executing unacked there");
  }
  for (const InsertEntry& entry : state.insert_queue) {
    if (entry.txn != txn) continue;
    if (entry.marked && state.insert_queue.front().txn != txn) {
      return Status::Internal(
          "Scheme1: marked ser(" + ToString(txn) + "@" + ToString(site) +
          ") released out of insert-queue order behind " +
          ToString(state.insert_queue.front().txn));
    }
    return Status::OK();
  }
  return Status::Internal("Scheme1: ser(" + ToString(txn) + "@" +
                          ToString(site) +
                          ") released but not in the insert queue");
}

bool Scheme1::IsMarked(GlobalTxnId txn, SiteId site) const {
  auto it = sites_.find(site);
  if (it == sites_.end()) return false;
  for (const InsertEntry& entry : it->second.insert_queue) {
    if (entry.txn == txn) return entry.marked;
  }
  return false;
}


void Scheme1::EncodeState(std::vector<uint8_t>* out) const {
  storage::PutU8(out, mark_all_ ? 1 : 0);
  // The TSG: txn -> sites is the whole graph (derived maps rebuild).
  std::vector<GlobalTxnId> txns = tsg_.Txns();
  storage::PutU32(out, static_cast<uint32_t>(txns.size()));
  for (GlobalTxnId txn : txns) {
    storage::PutI64(out, txn.value());
    const std::vector<SiteId>& txn_sites = tsg_.SitesOf(txn);
    storage::PutU32(out, static_cast<uint32_t>(txn_sites.size()));
    for (SiteId site : txn_sites) storage::PutI64(out, site.value());
  }
  // Per-site insert/delete queues and the executing slot. Marks are frozen
  // into the insert entries — re-deriving them against a compacted history
  // would be unsound, so they are snapshotted verbatim.
  std::vector<SiteId> site_ids;
  site_ids.reserve(sites_.size());
  for (const auto& [site, state] : sites_) site_ids.push_back(site);
  std::sort(site_ids.begin(), site_ids.end());
  storage::PutU32(out, static_cast<uint32_t>(site_ids.size()));
  for (SiteId site : site_ids) {
    const SiteState& state = sites_.at(site);
    storage::PutI64(out, site.value());
    storage::PutU32(out, static_cast<uint32_t>(state.insert_queue.size()));
    for (const InsertEntry& entry : state.insert_queue) {
      storage::PutI64(out, entry.txn.value());
      storage::PutU8(out, entry.marked ? 1 : 0);
    }
    storage::PutU32(out, static_cast<uint32_t>(state.delete_queue.size()));
    for (GlobalTxnId txn : state.delete_queue) {
      storage::PutI64(out, txn.value());
    }
    storage::PutU8(out, state.executing.has_value() ? 1 : 0);
    if (state.executing.has_value()) {
      storage::PutI64(out, state.executing->value());
    }
  }
}

bool Scheme1::DecodeState(const uint8_t* data, size_t size) {
  storage::Cursor c(data, size);
  if (c.U8() != (mark_all_ ? 1 : 0)) return false;
  tsg_ = TransactionSiteGraph();
  sites_.clear();
  uint32_t n_txns = c.U32();
  if (!c.ok()) return false;
  for (uint32_t i = 0; i < n_txns && c.ok(); ++i) {
    GlobalTxnId txn(c.I64());
    uint32_t n_sites = c.U32();
    if (!c.ok()) return false;
    std::vector<SiteId> txn_sites;
    txn_sites.reserve(n_sites);
    for (uint32_t j = 0; j < n_sites && c.ok(); ++j) {
      txn_sites.push_back(SiteId(c.I64()));
    }
    if (!c.ok()) return false;
    tsg_.InsertTxn(txn, txn_sites);
  }
  uint32_t n_site_states = c.U32();
  if (!c.ok()) return false;
  for (uint32_t i = 0; i < n_site_states && c.ok(); ++i) {
    SiteId site(c.I64());
    SiteState& state = sites_[site];
    uint32_t n_insert = c.U32();
    if (!c.ok()) return false;
    for (uint32_t j = 0; j < n_insert && c.ok(); ++j) {
      InsertEntry entry;
      entry.txn = GlobalTxnId(c.I64());
      entry.marked = c.U8() != 0;
      state.insert_queue.push_back(entry);
    }
    uint32_t n_delete = c.U32();
    if (!c.ok()) return false;
    for (uint32_t j = 0; j < n_delete && c.ok(); ++j) {
      state.delete_queue.push_back(GlobalTxnId(c.I64()));
    }
    if (c.U8() != 0) state.executing = GlobalTxnId(c.I64());
  }
  return c.ok() && c.exhausted();
}

}  // namespace mdbs::gtm
