#include "gtm/scheme0.h"

#include <algorithm>

#include "common/logging.h"
#include "storage/framing.h"

namespace mdbs::gtm {

void Scheme0::ActInit(const QueueOp& op) {
  for (SiteId site : op.sites) {
    queues_[site].push_back(op.txn);
    AddSteps(1);
  }
}

Verdict Scheme0::CondSer(GlobalTxnId txn, SiteId site) {
  AddSteps(1);
  auto it = queues_.find(site);
  MDBS_CHECK(it != queues_.end() && !it->second.empty())
      << "ser for " << txn << " with empty queue at " << site;
  return it->second.front() == txn ? Verdict::kReady : Verdict::kWait;
}

void Scheme0::ActSer(GlobalTxnId, SiteId) { AddSteps(1); }

void Scheme0::ActAck(GlobalTxnId txn, SiteId site) {
  AddSteps(1);
  auto it = queues_.find(site);
  MDBS_CHECK(it != queues_.end() && !it->second.empty() &&
             it->second.front() == txn)
      << "ack for " << txn << " that is not at the front of " << site;
  it->second.pop_front();
  if (it->second.empty()) queues_.erase(it);
}

Verdict Scheme0::CondFin(GlobalTxnId) {
  AddSteps(1);
  return Verdict::kReady;
}

void Scheme0::ActFin(GlobalTxnId) { AddSteps(1); }

void Scheme0::ActAbortCleanup(GlobalTxnId txn) {
  for (auto it = queues_.begin(); it != queues_.end();) {
    auto& queue = it->second;
    queue.erase(std::remove(queue.begin(), queue.end(), txn), queue.end());
    it = queue.empty() ? queues_.erase(it) : std::next(it);
  }
}

Status Scheme0::CheckStructuralInvariants() const {
  for (const auto& [site, queue] : queues_) {
    if (queue.empty()) {
      return Status::Internal("Scheme0: empty queue retained for " +
                              ToString(site));
    }
    std::unordered_map<GlobalTxnId, int> seen;
    for (GlobalTxnId txn : queue) {
      if (++seen[txn] > 1) {
        return Status::Internal("Scheme0: " + ToString(txn) +
                                " enqueued twice at " + ToString(site));
      }
    }
  }
  return Status::OK();
}

Status Scheme0::AuditSerRelease(GlobalTxnId txn, SiteId site) const {
  auto it = queues_.find(site);
  if (it == queues_.end() || it->second.empty()) {
    return Status::Internal("Scheme0: ser(" + ToString(txn) + "@" +
                            ToString(site) + ") released with no queue");
  }
  if (it->second.front() != txn) {
    return Status::Internal("Scheme0: ser(" + ToString(txn) + "@" +
                            ToString(site) + ") released but " +
                            ToString(it->second.front()) +
                            " heads the FIFO queue");
  }
  return Status::OK();
}

size_t Scheme0::QueueLength(SiteId site) const {
  auto it = queues_.find(site);
  return it == queues_.end() ? 0 : it->second.size();
}


void Scheme0::EncodeState(std::vector<uint8_t>* out) const {
  std::vector<SiteId> sites;
  sites.reserve(queues_.size());
  for (const auto& [site, queue] : queues_) sites.push_back(site);
  std::sort(sites.begin(), sites.end());
  storage::PutU32(out, static_cast<uint32_t>(sites.size()));
  for (SiteId site : sites) {
    const std::deque<GlobalTxnId>& queue = queues_.at(site);
    storage::PutI64(out, site.value());
    storage::PutU32(out, static_cast<uint32_t>(queue.size()));
    for (GlobalTxnId txn : queue) storage::PutI64(out, txn.value());
  }
}

bool Scheme0::DecodeState(const uint8_t* data, size_t size) {
  queues_.clear();
  storage::Cursor c(data, size);
  uint32_t n_sites = c.U32();
  if (!c.ok()) return false;
  for (uint32_t i = 0; i < n_sites && c.ok(); ++i) {
    SiteId site(c.I64());
    uint32_t n = c.U32();
    if (!c.ok()) return false;
    std::deque<GlobalTxnId>& queue = queues_[site];
    for (uint32_t j = 0; j < n && c.ok(); ++j) {
      queue.push_back(GlobalTxnId(c.I64()));
    }
  }
  return c.ok() && c.exhausted();
}

}  // namespace mdbs::gtm
