#ifndef MDBS_GTM_SERIALIZATION_FUNCTION_H_
#define MDBS_GTM_SERIALIZATION_FUNCTION_H_

#include "common/ids.h"
#include "lcc/protocol.h"

namespace mdbs::gtm {

/// Which operation of a subtransaction realizes the serialization function
/// ser_k at its site (paper §2.2).
enum class SerPointKind {
  /// The begin operation — sites running timestamp ordering, where the
  /// timestamp is assigned at begin.
  kBegin,
  /// The last data operation — sites running strict 2PL, where the lock
  /// point is reached at the last operation (operation lists are
  /// predeclared).
  kLastOp,
  /// A GTM-injected write to a per-site ticket item, forcing a direct
  /// conflict — sites whose protocol (SGT, OCC) exposes no serialization
  /// function [GRS91].
  kTicket,
};

const char* SerPointKindName(SerPointKind kind);

/// The serialization-function choice for each local protocol.
SerPointKind SerPointKindFor(lcc::ProtocolKind kind);

/// The reserved per-site ticket item. Workloads must keep ordinary items
/// below this id.
inline constexpr DataItemId kTicketItem{1'000'000'000};

}  // namespace mdbs::gtm

#endif  // MDBS_GTM_SERIALIZATION_FUNCTION_H_
