#ifndef MDBS_BENCH_BENCH_JSON_H_
#define MDBS_BENCH_BENCH_JSON_H_

// Machine-readable benchmark results. Each bench fills a BenchReport with
// one row per measured cell and writes BENCH_<name>.json (override the
// path with a `--json=PATH` argument), so sweeps can be diffed, plotted
// and regression-checked without scraping stdout tables.
//
//   {"bench":"throughput","rows":[{"scheme":"Scheme3","mpl":8,...},...]}

#include <cstdio>
#include <sstream>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/status.h"
#include "obs/json.h"

namespace mdbs::bench {

class BenchReport {
 public:
  using Cell = std::pair<std::string, std::variant<std::string, double>>;

  class Row {
   public:
    Row& Set(std::string key, std::string value) {
      cells_.emplace_back(std::move(key), std::move(value));
      return *this;
    }
    Row& Set(std::string key, double value) {
      cells_.emplace_back(std::move(key), value);
      return *this;
    }

   private:
    friend class BenchReport;
    std::vector<Cell> cells_;
  };

  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  Row& AddRow() { return rows_.emplace_back(); }

  /// BENCH_<name>.json in the working directory unless a `--json=PATH`
  /// argument overrides it.
  std::string PathFromArgs(int argc, char** argv) const {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--json=", 0) == 0) return arg.substr(7);
    }
    return "BENCH_" + name_ + ".json";
  }

  Status WriteFile(const std::string& path) const {
    std::ostringstream os;
    {
      obs::JsonWriter json(os);
      json.BeginObject();
      json.Key("bench");
      json.String(name_);
      json.Key("rows");
      json.BeginArray(/*one_per_line=*/true);
      for (const Row& row : rows_) {
        json.BeginObject();
        for (const Cell& cell : row.cells_) {
          json.Key(cell.first);
          if (std::holds_alternative<double>(cell.second)) {
            json.Double(std::get<double>(cell.second));
          } else {
            json.String(std::get<std::string>(cell.second));
          }
        }
        json.EndObject();
      }
      json.EndArray();
      json.EndObject();
    }
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
      return Status::Internal("cannot open " + path);
    }
    std::string text = os.str();
    size_t written = std::fwrite(text.data(), 1, text.size(), file);
    std::fclose(file);
    if (written != text.size()) {
      return Status::Internal("short write to " + path);
    }
    return Status::OK();
  }

  /// WriteFile + a one-line note on stdout; benches call this last.
  void WriteFromArgs(int argc, char** argv) const {
    std::string path = PathFromArgs(argc, argv);
    Status status = WriteFile(path);
    std::printf("\nresults: %s (%s)\n", path.c_str(),
                status.ToString().c_str());
  }

 private:
  std::string name_;
  std::vector<Row> rows_;
};

}  // namespace mdbs::bench

#endif  // MDBS_BENCH_BENCH_JSON_H_
