// E1 — Scheduling complexity of Schemes 0-3 (paper Theorems 4, 6, 9).
//
// Reproduces the paper's complexity claims empirically: the average number
// of abstract scheduler steps per transaction as a function of
//   n   — concurrently active global transactions,
//   dav — sites per transaction,
//   m   — number of sites.
// Expected shapes:
//   Scheme 0: O(dav)              (flat in n)
//   Scheme 1: O(m + n + n*dav)    (linear in n)
//   Scheme 2: O(n^2 * dav)        (quadratic in n)
//   Scheme 3: O(n^2 * dav)        (quadratic in n)
// The steps_per_txn counter is the datum; wall time is reported by the
// framework as usual.

#include <benchmark/benchmark.h>

#include "gtm/synthetic.h"

namespace {

using mdbs::gtm::MakeScheme;
using mdbs::gtm::SchemeKind;
using mdbs::gtm::SyntheticConfig;
using mdbs::gtm::SyntheticGtmHarness;
using mdbs::gtm::SyntheticReport;

void RunScheme(benchmark::State& state, SchemeKind kind) {
  SyntheticConfig config;
  config.active_txns = static_cast<int>(state.range(0));
  config.dav_min = config.dav_max = static_cast<int>(state.range(1));
  config.sites = static_cast<int>(state.range(2));
  config.total_txns = 400;
  config.seed = 42;

  double steps_per_txn = 0;
  double sched_steps_per_txn = 0;
  double waits_per_ser = 0;
  int64_t completed = 0;
  for (auto _ : state) {
    SyntheticGtmHarness harness(MakeScheme(kind), config);
    SyntheticReport report = harness.Run();
    steps_per_txn = report.StepsPerTxn();
    sched_steps_per_txn = report.SchedulingStepsPerTxn();
    waits_per_ser = report.WaitsPerSerOp();
    completed += report.completed;
    benchmark::DoNotOptimize(report.completed);
  }
  // sched_steps_per_txn is the paper's cost model (targeted wakeup, §4);
  // steps_per_txn additionally pays for failed WAIT re-evaluations in our
  // rescanning driver.
  state.counters["sched_steps_per_txn"] = sched_steps_per_txn;
  state.counters["steps_per_txn"] = steps_per_txn;
  state.counters["waits_per_ser"] = waits_per_ser;
  state.SetItemsProcessed(completed);
}

void ApplySweeps(benchmark::internal::Benchmark* bench) {
  // Sweep n with dav=3, m=8 (complexity in the population size).
  for (int n : {4, 8, 16, 32, 64, 128}) bench->Args({n, 3, 8});
  // Sweep dav with n=16, m=16 (complexity in transaction footprint).
  for (int dav : {1, 2, 4, 8, 16}) bench->Args({16, dav, 16});
  // Sweep m with n=16, dav=3 (site-count sensitivity, Scheme 1's m term).
  for (int m : {4, 8, 16, 32, 64}) bench->Args({16, 3, m});
  bench->ArgNames({"n", "dav", "m"})->Unit(benchmark::kMillisecond);
}

void BM_Scheme0(benchmark::State& state) {
  RunScheme(state, SchemeKind::kScheme0);
}
void BM_Scheme1(benchmark::State& state) {
  RunScheme(state, SchemeKind::kScheme1);
}
void BM_Scheme2(benchmark::State& state) {
  RunScheme(state, SchemeKind::kScheme2);
}
void BM_Scheme3(benchmark::State& state) {
  RunScheme(state, SchemeKind::kScheme3);
}

BENCHMARK(BM_Scheme0)->Apply(ApplySweeps);
BENCHMARK(BM_Scheme1)->Apply(ApplySweeps);
BENCHMARK(BM_Scheme2)->Apply(ApplySweeps);
BENCHMARK(BM_Scheme3)->Apply(ApplySweeps);

}  // namespace

BENCHMARK_MAIN();
