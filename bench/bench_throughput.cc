// E3 — End-to-end MDBS performance (the analysis the paper calls missing
// in §1/§8): throughput and response time of global transactions under
// each conservative scheme, across multiprogramming levels, on a
// heterogeneous 4-site MDBS (2PL, TO, SGT, OCC) with local background
// transactions providing indirect conflicts.
//
// Expected shape (paper §3(2-3)): schemes permitting more concurrency
// (Scheme 3 > Scheme 1/2 > Scheme 0) sustain higher throughput and lower
// response times as the multiprogramming level grows, even though their
// per-operation scheduling overhead is higher — the overhead is amortized
// over whole subtransactions.

#include <cstdio>

#include "bench_json.h"
#include "mdbs/driver.h"
#include "mdbs/mdbs.h"

namespace {

using mdbs::DriverConfig;
using mdbs::DriverReport;
using mdbs::Mdbs;
using mdbs::MdbsConfig;
using mdbs::gtm::SchemeKind;
using mdbs::lcc::ProtocolKind;

DriverReport RunOne(SchemeKind scheme, int mpl, uint64_t seed) {
  MdbsConfig config = MdbsConfig::Mixed(
      {ProtocolKind::kTwoPhaseLocking, ProtocolKind::kTimestampOrdering,
       ProtocolKind::kSerializationGraph, ProtocolKind::kOptimistic},
      scheme);
  config.seed = seed;
  config.audit.enabled = false;  // Auditing is for correctness runs.
  // Cross-site blocking (2PL locks + ticket latches) is resolved by the
  // MDBS-level timeout; keep it tight so scheduling effects, not timeout
  // penalties, dominate the reported latencies.
  config.gtm.attempt_timeout = 30'000;
  Mdbs system(config);
  DriverConfig driver;
  driver.global_clients = mpl;
  driver.local_clients_per_site = 1;
  driver.target_global_commits = 150;
  driver.global_workload.items_per_site = 200;
  driver.global_workload.dav_min = 2;
  driver.global_workload.dav_max = 3;
  driver.local_workload.items_per_site = 200;
  return RunDriver(&system, driver, seed);
}

}  // namespace

int main(int argc, char** argv) {
  mdbs::bench::BenchReport results("throughput");
  std::printf("E3 — global transaction throughput and response time\n");
  std::printf("4 heterogeneous sites (2PL, TO, SGT, OCC), 150 global "
              "commits per cell, 1 local client per site\n\n");
  std::printf("%-10s %5s %14s %10s %10s %10s %9s %9s\n", "scheme", "mpl",
              "thruput/Mtick", "resp_p50", "resp_p95", "ser_waits",
              "timeouts", "retries");
  const int kSeeds = 3;
  for (SchemeKind scheme :
       {SchemeKind::kScheme0, SchemeKind::kScheme1, SchemeKind::kScheme2,
        SchemeKind::kScheme3}) {
    for (int mpl : {1, 2, 4, 8, 16}) {
      double throughput = 0, p50 = 0, p95 = 0;
      long long waits = 0, timeouts = 0, retries = 0;
      for (int s = 0; s < kSeeds; ++s) {
        DriverReport report =
            RunOne(scheme, mpl, static_cast<uint64_t>(mpl * 7 + s + 1));
        throughput += report.global_throughput / kSeeds;
        p50 += report.global_response.Median() / kSeeds;
        p95 += report.global_response.P95() / kSeeds;
        waits += report.gtm2.ser_wait_additions;
        timeouts += report.gtm1.timeouts;
        retries += report.gtm1.aborted_attempts;
      }
      std::printf("%-10s %5d %14.1f %10.0f %10.0f %10lld %9lld %9lld\n",
                  mdbs::gtm::SchemeKindName(scheme), mpl, throughput, p50,
                  p95, waits, timeouts, retries);
      results.AddRow()
          .Set("scheme", mdbs::gtm::SchemeKindName(scheme))
          .Set("mpl", static_cast<double>(mpl))
          .Set("throughput_per_mtick", throughput)
          .Set("resp_p50", p50)
          .Set("resp_p95", p95)
          .Set("ser_waits", static_cast<double>(waits))
          .Set("timeouts", static_cast<double>(timeouts))
          .Set("retries", static_cast<double>(retries));
    }
    std::printf("\n");
  }
  results.WriteFromArgs(argc, argv);
  return 0;
}
