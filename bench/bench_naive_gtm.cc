// E7 — Why GTM2 schemes must be purpose-built (paper §3(1)).
//
// In ser(S), any two operations at the same site conflict, and the number
// of active global transactions usually exceeds the number of sites, so
// off-the-shelf non-conservative protocols behave badly: naive 2PL on
// site-locks deadlocks frequently, naive TO aborts late arrivals. The
// conservative Schemes 0-3 never abort. This experiment counts
// scheme-demanded aborts per 100 completed transactions on identical
// synthetic populations.

#include <cstdio>
#include <memory>

#include "gtm/baselines.h"
#include "gtm/synthetic.h"

namespace {

using mdbs::gtm::MakeScheme;
using mdbs::gtm::NaiveTimestamp;
using mdbs::gtm::NaiveTwoPhase;
using mdbs::gtm::Scheme;
using mdbs::gtm::SchemeKind;
using mdbs::gtm::SyntheticConfig;
using mdbs::gtm::SyntheticGtmHarness;
using mdbs::gtm::SyntheticReport;

SyntheticReport RunOne(std::unique_ptr<Scheme> scheme, int n, int sites,
                       uint64_t seed) {
  SyntheticConfig config;
  config.sites = sites;
  config.active_txns = n;
  config.dav_min = 2;
  config.dav_max = 3;
  config.total_txns = 500;
  config.seed = seed;
  SyntheticGtmHarness harness(std::move(scheme), config);
  return harness.Run();
}

void Report(const char* name, const SyntheticReport& report) {
  double aborts_per_100 =
      report.completed == 0
          ? 0.0
          : 100.0 * static_cast<double>(report.scheme_aborts) /
                static_cast<double>(report.completed);
  std::printf("%-12s %12lld %14.1f %12.4f %14s\n", name,
              static_cast<long long>(report.completed), aborts_per_100,
              report.WaitsPerSerOp(),
              report.ser_schedule_serializable ? "yes" : "VIOLATED");
}

}  // namespace

int main() {
  std::printf("E7 — naive GTM2 protocols vs the conservative schemes\n\n");
  for (int n : {8, 32}) {
    const int kSites = 4;  // n >> m, the paper's §3(1) regime.
    std::printf("n=%d active transactions over m=%d sites:\n", n, kSites);
    std::printf("%-12s %12s %14s %12s %14s\n", "scheme", "completed",
                "aborts/100", "waits/ser", "ser(S)-CSR");
    Report("Naive2PL",
           RunOne(std::make_unique<NaiveTwoPhase>(), n, kSites, 3));
    Report("NaiveTO",
           RunOne(std::make_unique<NaiveTimestamp>(), n, kSites, 3));
    Report("Scheme0",
           RunOne(MakeScheme(SchemeKind::kScheme0), n, kSites, 3));
    Report("Scheme1",
           RunOne(MakeScheme(SchemeKind::kScheme1), n, kSites, 3));
    Report("Scheme3",
           RunOne(MakeScheme(SchemeKind::kScheme3), n, kSites, 3));
    std::printf("\n");
  }
  std::printf("(Naive protocols abort; conservative Schemes 0-3 never do "
              "— they only delay. All stay ser(S)-serializable.)\n");
  return 0;
}
