// E5 — Conservative delay vs. optimistic abort (paper §3(1)).
//
// The paper argues GTM-level schemes must be conservative because aborting
// a global transaction is expensive. This experiment quantifies the trade:
// the non-conservative optimistic ticket baseline (GRS91-style) against
// the conservative schemes, sweeping contention (items per site). Reported
// per cell: GTM-demanded aborts per 100 commits, total attempts per
// commit, and throughput.

#include <cstdio>

#include "mdbs/driver.h"
#include "mdbs/mdbs.h"

namespace {

using mdbs::DriverConfig;
using mdbs::DriverReport;
using mdbs::Mdbs;
using mdbs::MdbsConfig;
using mdbs::gtm::SchemeKind;
using mdbs::lcc::ProtocolKind;

DriverReport RunOne(SchemeKind scheme, int mpl, uint64_t seed) {
  // SGT/OCC sites so every global subtransaction carries a ticket — the
  // setting the optimistic ticket method was designed for. At ticket sites
  // every pair of global transactions conflicts (on the ticket), so the
  // interesting sweep is the multiprogramming level, not the data size.
  MdbsConfig config = MdbsConfig::Mixed(
      {ProtocolKind::kSerializationGraph, ProtocolKind::kSerializationGraph,
       ProtocolKind::kOptimistic},
      scheme);
  config.seed = seed;
  config.audit.enabled = false;  // Auditing is for correctness runs.
  config.gtm.attempt_timeout = 30'000;
  Mdbs system(config);
  DriverConfig driver;
  driver.global_clients = mpl;
  driver.local_clients_per_site = 0;
  driver.target_global_commits = 120;
  driver.global_workload.items_per_site = 200;
  driver.global_workload.dav_min = 2;
  driver.global_workload.dav_max = 3;
  return RunDriver(&system, driver, seed);
}

}  // namespace

int main() {
  std::printf("E5 — GTM aborts: conservative schemes vs optimistic ticket "
              "baseline\n");
  std::printf("3 ticket sites (SGT, SGT, OCC), 8 global clients, 120 "
              "commits per cell\n\n");
  std::printf("%-18s %8s %14s %14s %10s %14s\n", "scheme", "mpl",
              "gtm_aborts/100c", "attempts/commit", "timeouts",
              "thruput/Mtick");
  for (SchemeKind scheme :
       {SchemeKind::kScheme0, SchemeKind::kScheme3,
        SchemeKind::kTicketOptimistic}) {
    for (int mpl : {2, 4, 8}) {
      DriverReport report = RunOne(scheme, mpl, 17);
      double commits = static_cast<double>(report.global_committed);
      double aborts_per_100 =
          commits == 0 ? 0.0
                       : 100.0 *
                             static_cast<double>(report.gtm1.scheme_aborts) /
                             commits;
      std::printf("%-18s %8d %14.1f %14.2f %10lld %14.1f\n",
                  mdbs::gtm::SchemeKindName(scheme), mpl, aborts_per_100,
                  report.global_attempts.mean(),
                  static_cast<long long>(report.gtm1.timeouts),
                  report.global_throughput);
    }
    std::printf("\n");
  }
  std::printf("(Conservative schemes must show 0 GTM aborts at any "
              "multiprogramming level; the optimistic baseline aborts more "
              "as concurrency grows — §3(1).)\n");
  return 0;
}
