// E4 — Global serializability (paper Theorems 2, 3, 5, 8 and the §1
// motivation). Runs a hot-spot mixed workload under every scheme plus the
// "no global control" strawman and checks, with the independent conflict-
// graph verifier, whether the committed global schedule is conflict
// serializable. Conservative schemes and the optimistic ticket baseline
// must never violate; releasing ser operations unconditionally must
// eventually violate through direct races and indirect conflicts.

#include <cstdio>

#include "mdbs/driver.h"
#include "mdbs/mdbs.h"

namespace {

using mdbs::DriverConfig;
using mdbs::Mdbs;
using mdbs::MdbsConfig;
using mdbs::gtm::SchemeKind;
using mdbs::lcc::ProtocolKind;

struct Row {
  int violations = 0;
  int runs = 0;
  int64_t committed = 0;
  int64_t gtm_aborts = 0;
};

Row RunScheme(SchemeKind scheme) {
  Row row;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    MdbsConfig config = MdbsConfig::Mixed(
        {ProtocolKind::kTwoPhaseLocking, ProtocolKind::kTimestampOrdering,
         ProtocolKind::kTwoPhaseLocking},
        scheme);
    config.seed = seed;
    config.audit.enabled = false;  // Auditing is for correctness runs.
    Mdbs system(config);
    DriverConfig driver;
    driver.global_clients = 10;
    driver.local_clients_per_site = 1;
    driver.target_global_commits = 120;
    driver.global_workload.items_per_site = 3;  // Hot spot.
    driver.global_workload.dav_min = 2;
    driver.global_workload.dav_max = 3;
    driver.global_workload.read_ratio = 0.3;
    driver.local_workload.items_per_site = 3;
    driver.local_workload.read_ratio = 0.3;
    mdbs::DriverReport report = RunDriver(&system, driver, seed);
    ++row.runs;
    row.committed += report.global_committed;
    row.gtm_aborts += report.gtm1.scheme_aborts;
    if (!system.CheckGloballySerializable().ok()) ++row.violations;
    // Local schedules are always serializable — the local DBMSs guarantee
    // it regardless of the GTM (paper §2.1).
    if (!system.CheckLocallySerializable().ok()) {
      std::printf("!! local serializability violated — bug\n");
    }
  }
  return row;
}

}  // namespace

int main() {
  std::printf("E4 — global serializability under hot-spot contention\n");
  std::printf("3 sites (2PL, TO, 2PL), 10 global clients, 1 local client "
              "per site, 3 items per site, 8 seeds\n\n");
  std::printf("%-18s %10s %12s %12s %12s\n", "scheme", "runs",
              "violations", "commits", "gtm_aborts");
  for (SchemeKind scheme :
       {SchemeKind::kScheme0, SchemeKind::kScheme1, SchemeKind::kScheme2,
        SchemeKind::kScheme3, SchemeKind::kTicketOptimistic,
        SchemeKind::kNone}) {
    Row row = RunScheme(scheme);
    std::printf("%-18s %10d %12d %12lld %12lld\n",
                mdbs::gtm::SchemeKindName(scheme), row.runs, row.violations,
                static_cast<long long>(row.committed),
                static_cast<long long>(row.gtm_aborts));
  }
  std::printf("\n(Schemes 0-3 and the ticket baseline must show 0 "
              "violations; NoControl is expected to violate.)\n");
  return 0;
}
