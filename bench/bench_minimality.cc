// E6 — Non-minimality of Eliminate_Cycles and the cost of exactness
// (paper Theorem 7). Computing a *minimal* dependency set Δ is NP-hard;
// the paper's Eliminate_Cycles is polynomial but may over-constrain. On
// random small TSGDs this experiment compares |Δ| from Eliminate_Cycles
// against the true minimum (found by exhaustive subset search) and shows
// the exhaustive search's running time exploding with the candidate count
// while Eliminate_Cycles stays flat.

#include <chrono>
#include <cstdio>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "gtm/tsgd.h"

namespace {

using mdbs::GlobalTxnId;
using mdbs::Rng;
using mdbs::SiteId;
using mdbs::gtm::Dependency;
using mdbs::gtm::Tsgd;

double Seconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

/// Builds a random TSGD with `txns` existing transactions over `sites`
/// sites plus a newcomer touching all sites; returns the structure and the
/// newcomer id.
Tsgd RandomTsgd(int txns, int sites, double density, Rng* rng,
                GlobalTxnId* newcomer) {
  Tsgd tsgd;
  for (int t = 0; t < txns; ++t) {
    std::vector<SiteId> txn_sites;
    for (int s = 0; s < sites; ++s) {
      if (rng->NextBernoulli(density)) txn_sites.push_back(SiteId(s));
    }
    if (txn_sites.empty()) txn_sites.push_back(SiteId(0));
    tsgd.InsertTxn(GlobalTxnId(t), txn_sites);
  }
  *newcomer = GlobalTxnId(1000);
  std::vector<SiteId> newcomer_sites;
  for (int s = 0; s < sites; ++s) {
    if (rng->NextBernoulli(density)) newcomer_sites.push_back(SiteId(s));
  }
  if (newcomer_sites.size() < 2 && sites >= 2) {
    newcomer_sites = {SiteId(0), SiteId(1)};
  }
  tsgd.InsertTxn(*newcomer, newcomer_sites);
  return tsgd;
}

/// All legal Δ candidates: (v, u) -> (u, newcomer).
std::vector<Dependency> Candidates(const Tsgd& tsgd, GlobalTxnId newcomer) {
  std::vector<Dependency> result;
  for (SiteId site : tsgd.SitesOf(newcomer)) {
    for (GlobalTxnId other : tsgd.TxnsAt(site)) {
      if (other != newcomer) {
        result.push_back(Dependency{site, other, newcomer});
      }
    }
  }
  return result;
}

bool AcyclicWith(const Tsgd& base, GlobalTxnId newcomer,
                 const std::vector<Dependency>& candidates,
                 const std::vector<int>& chosen) {
  // Copy-free would need removal support; instead rebuild via a scratch
  // copy each time (instances are tiny).
  Tsgd copy;
  // Rebuild: transactions + edges.
  // (Tsgd has no clone; reconstruct from public accessors.)
  std::vector<GlobalTxnId> ids;
  for (SiteId site : base.SitesOf(newcomer)) {
    for (GlobalTxnId txn : base.TxnsAt(site)) {
      bool seen = false;
      for (GlobalTxnId known : ids) {
        if (known == txn) seen = true;
      }
      if (!seen) ids.push_back(txn);
    }
  }
  for (GlobalTxnId txn : ids) copy.InsertTxn(txn, base.SitesOf(txn));
  for (int index : chosen) {
    const Dependency& dep = candidates[static_cast<size_t>(index)];
    copy.AddDependency(dep.site, dep.from, dep.to);
  }
  return !copy.HasCycleInvolving(newcomer);
}

/// Exhaustive minimum Δ: sweep all candidate subsets in increasing size
/// (bitmask order grouped by popcount). The full candidate set always
/// works — it forces the newcomer after everything at every site — so a
/// minimum exists.
std::optional<size_t> MinimumDelta(const Tsgd& tsgd, GlobalTxnId newcomer,
                                   const std::vector<Dependency>& candidates,
                                   int64_t* subsets_checked) {
  size_t count = candidates.size();
  if (count > 20) return std::nullopt;  // Exhaustion infeasible: skip.
  std::optional<size_t> best;
  for (uint32_t mask = 0; mask < (1u << count); ++mask) {
    size_t size = static_cast<size_t>(__builtin_popcount(mask));
    if (best.has_value() && size >= *best) continue;
    ++*subsets_checked;
    std::vector<int> chosen;
    for (size_t i = 0; i < count; ++i) {
      if (mask & (1u << i)) chosen.push_back(static_cast<int>(i));
    }
    if (AcyclicWith(tsgd, newcomer, candidates, chosen)) best = size;
  }
  return best;
}

}  // namespace

int main() {
  std::printf("E6 — Eliminate_Cycles Δ vs the NP-hard minimal Δ "
              "(Theorem 7)\n\n");
  std::printf("%-6s %-6s %-8s %12s %12s %10s %12s %14s %10s\n", "txns",
              "sites", "density", "|delta_EC|", "|delta_min|", "nonmin%",
              "EC_time_ms", "exact_time_ms", "subsets");
  Rng rng(99);
  for (int txns : {2, 3, 4, 5}) {
    for (int sites : {2, 3}) {
      for (double density : {0.5, 0.9}) {
        double sum_ec = 0, sum_min = 0;
        double ec_time = 0, exact_time = 0;
        int64_t subsets = 0;
        int nonminimal = 0;
        const int kTrials = 12;
        for (int trial = 0; trial < kTrials; ++trial) {
          GlobalTxnId newcomer;
          Tsgd tsgd = RandomTsgd(txns, sites, density, &rng, &newcomer);
          std::vector<Dependency> candidates = Candidates(tsgd, newcomer);

          auto t0 = std::chrono::steady_clock::now();
          std::vector<Dependency> delta =
              tsgd.EliminateCycles(newcomer, nullptr);
          auto t1 = std::chrono::steady_clock::now();
          std::optional<size_t> minimum =
              MinimumDelta(tsgd, newcomer, candidates, &subsets);
          auto t2 = std::chrono::steady_clock::now();

          sum_ec += static_cast<double>(delta.size());
          sum_min += static_cast<double>(minimum.value_or(0));
          if (minimum.has_value() && delta.size() > *minimum) ++nonminimal;
          ec_time += Seconds(t1 - t0);
          exact_time += Seconds(t2 - t1);
        }
        std::printf("%-6d %-6d %-8.1f %12.2f %12.2f %9d%% %12.4f %14.4f "
                    "%10lld\n",
                    txns, sites, density, sum_ec / kTrials,
                    sum_min / kTrials, 100 * nonminimal / kTrials,
                    1e3 * ec_time / kTrials, 1e3 * exact_time / kTrials,
                    static_cast<long long>(subsets));
      }
    }
  }
  std::printf("\n(|delta_EC| >= |delta_min| always; the exact search's "
              "subset count grows exponentially with instance size while "
              "Eliminate_Cycles stays polynomial.)\n");
  return 0;
}
