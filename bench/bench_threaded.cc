// E9 — Threaded-engine throughput scaling: committed global transactions
// per second against real client thread count, for each conservative
// scheme, on the heterogeneous 4-site MDBS. Unlike E3, nothing here is
// simulated — clients are std::threads blocking on condition variables,
// every site and the GTM run on their own strands, and a tick is a real
// microsecond.
//
// Expected shape: throughput grows with the thread count as long as
// clients spend most of their time blocked (think time, network delay,
// lock waits) rather than contending for the scheduler — the closed-loop
// system overlaps waits even on a single core. Schemes permitting more
// concurrency (Scheme 3) should hold their scaling longer than Scheme 0,
// whose one-global-transaction-at-a-time discipline turns extra clients
// into queueing.

#include <cstdio>

#include "bench_json.h"
#include "mdbs/mdbs.h"
#include "mdbs/threaded_driver.h"

namespace {

using mdbs::DriverConfig;
using mdbs::DriverReport;
using mdbs::Mdbs;
using mdbs::MdbsConfig;
using mdbs::RunThreadedDriver;
using mdbs::gtm::SchemeKind;
using mdbs::lcc::ProtocolKind;

DriverReport RunOne(SchemeKind scheme, int clients, uint64_t seed) {
  MdbsConfig config = MdbsConfig::Mixed(
      {ProtocolKind::kTwoPhaseLocking, ProtocolKind::kTimestampOrdering,
       ProtocolKind::kSerializationGraph, ProtocolKind::kOptimistic},
      scheme);
  config.seed = seed;
  config.audit.enabled = false;  // Auditing is for correctness runs.
  config.threaded = true;
  // Cross-site blocking is resolved by the MDBS-level timeout; 30ms of
  // real time here, matching E3's 30k ticks.
  config.gtm.attempt_timeout = 30'000;
  Mdbs system(config);
  DriverConfig driver;
  driver.global_clients = clients;
  driver.local_clients_per_site = 1;
  driver.target_global_commits = 200;
  driver.global_think = 200;  // µs between a client's transactions.
  driver.global_workload.items_per_site = 200;
  driver.global_workload.dav_min = 2;
  driver.global_workload.dav_max = 3;
  driver.local_workload.items_per_site = 200;
  return RunThreadedDriver(&system, driver, seed);
}

}  // namespace

int main(int argc, char** argv) {
  mdbs::bench::BenchReport results("threaded");
  std::printf("E9 — threaded engine: committed global txns/sec vs thread "
              "count\n");
  std::printf("4 heterogeneous sites (2PL, TO, SGT, OCC), real client "
              "threads, 200 global commits per cell\n\n");
  std::printf("%-10s %8s %12s %10s %10s %10s %9s\n", "scheme", "threads",
              "txns/sec", "resp_p50", "resp_p95", "duration", "scale_x1");
  for (SchemeKind scheme :
       {SchemeKind::kScheme0, SchemeKind::kScheme1, SchemeKind::kScheme2,
        SchemeKind::kScheme3}) {
    double base = 0;
    for (int clients : {1, 2, 4, 8}) {
      DriverReport report =
          RunOne(scheme, clients, static_cast<uint64_t>(clients * 11 + 3));
      if (clients == 1) base = report.global_throughput;
      std::printf("%-10s %8d %12.1f %10.0f %10.0f %9lldms %8.2fx\n",
                  mdbs::gtm::SchemeKindName(scheme), clients,
                  report.global_throughput, report.global_response.Median(),
                  report.global_response.P95(),
                  static_cast<long long>(report.duration / 1000),
                  base > 0 ? report.global_throughput / base : 0.0);
      results.AddRow()
          .Set("scheme", mdbs::gtm::SchemeKindName(scheme))
          .Set("threads", static_cast<double>(clients))
          .Set("txns_per_sec", report.global_throughput)
          .Set("resp_p50", report.global_response.Median())
          .Set("resp_p95", report.global_response.P95())
          .Set("duration_us", static_cast<double>(report.duration))
          .Set("scale_x1",
               base > 0 ? report.global_throughput / base : 0.0);
    }
    std::printf("\n");
  }
  results.WriteFromArgs(argc, argv);
  return 0;
}
