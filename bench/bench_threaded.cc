// E9 — Threaded-engine throughput scaling: committed global transactions
// per second against real client thread count, for each conservative
// scheme, on the heterogeneous 4-site MDBS. Unlike E3, nothing here is
// simulated — clients are std::threads blocking on condition variables,
// every site and the GTM run on their own strands, and a tick is a real
// microsecond.
//
// Expected shape: throughput grows with the thread count as long as
// clients spend most of their time blocked (think time, network delay,
// lock waits) rather than contending for the scheduler — the closed-loop
// system overlaps waits even on a single core. Schemes permitting more
// concurrency (Scheme 3) should hold their scaling longer than Scheme 0,
// whose one-global-transaction-at-a-time discipline turns extra clients
// into queueing.

// A second sweep measures the certified fast path (src/analysis): a
// statically robust template mix runs once under stock Scheme 3 (ser-op
// delays, ticket injection at the SGT site) and once downgraded to the
// delay-free fast path the analyzer certified. The gap is the price of
// ser-op control on a workload that never needed it.
//
// A third sweep (E14) A/Bs the always-on metrics engine: the same cell with
// config.metrics.enabled on vs off. The engine's budget is <2% throughput;
// the measured overhead lands in BENCH_threaded.json as mode=metrics_*.

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <vector>

#include "analysis/capability.h"
#include "analysis/robustness.h"
#include "analysis/template.h"
#include "bench_json.h"
#include "gtm/robust_fast_path.h"
#include "mdbs/mdbs.h"
#include "mdbs/threaded_driver.h"
#include "obs/metrics.h"

namespace {

using mdbs::DriverConfig;
using mdbs::DriverReport;
using mdbs::Mdbs;
using mdbs::MdbsConfig;
using mdbs::RunThreadedDriver;
using mdbs::gtm::SchemeKind;
using mdbs::lcc::ProtocolKind;
using mdbs::obs::MetricsSnapshot;
using mdbs::obs::TxnPhase;
using mdbs::obs::TxnPhaseName;

struct RunResult {
  DriverReport report;
  /// Engaged when the metrics engine ran (metrics_enabled).
  std::optional<MetricsSnapshot> snapshot;
};

RunResult RunOne(SchemeKind scheme, int clients, uint64_t seed,
                 bool metrics_enabled = true) {
  MdbsConfig config = MdbsConfig::Mixed(
      {ProtocolKind::kTwoPhaseLocking, ProtocolKind::kTimestampOrdering,
       ProtocolKind::kSerializationGraph, ProtocolKind::kOptimistic},
      scheme);
  config.seed = seed;
  config.audit.enabled = false;  // Auditing is for correctness runs.
  config.threaded = true;
  config.metrics.enabled = metrics_enabled;
  // Cross-site blocking is resolved by the MDBS-level timeout; 30ms of
  // real time here, matching E3's 30k ticks.
  config.gtm.attempt_timeout = 30'000;
  Mdbs system(config);
  DriverConfig driver;
  driver.global_clients = clients;
  driver.local_clients_per_site = 1;
  driver.target_global_commits = 200;
  driver.global_think = 200;  // µs between a client's transactions.
  driver.global_workload.items_per_site = 200;
  driver.global_workload.dav_min = 2;
  driver.global_workload.dav_max = 3;
  driver.local_workload.items_per_site = 200;
  RunResult result;
  result.report = RunThreadedDriver(&system, driver, seed);
  if (system.metrics() != nullptr) {
    result.snapshot = system.metrics()->Snapshot();
  }
  return result;
}

/// Adds the snapshot's phase decomposition to a bench row: exact per-phase
/// tick totals and shares, lifetime tail quantiles, and the bottleneck
/// verdict — the data E14 uses to explain E9's scaling collapse.
void AddPhaseBreakdown(mdbs::bench::BenchReport::Row& row,
                       const MetricsSnapshot& snapshot) {
  int64_t total = 0;
  for (int64_t t : snapshot.phase_ticks) total += t;
  for (int i = 0; i < mdbs::obs::kTxnPhaseCount; ++i) {
    const std::string name = TxnPhaseName(static_cast<TxnPhase>(i));
    int64_t ticks = snapshot.phase_ticks[static_cast<size_t>(i)];
    row.Set("phase." + name + ".ticks", static_cast<double>(ticks));
    row.Set("phase." + name + ".share",
            total == 0 ? 0.0
                       : static_cast<double>(ticks) /
                             static_cast<double>(total));
  }
  row.Set("lifetime_p99", snapshot.lifetime.P99());
  row.Set("lifetime_p999", snapshot.lifetime.P999());
  row.Set("bottleneck", std::string(TxnPhaseName(snapshot.bottleneck)));
  row.Set("bottleneck_share", snapshot.bottleneck_share);
  row.Set("balance_violations",
          static_cast<double>(snapshot.balance_violations));
}

// The robust mix for the fast-path comparison: every write conflict is
// confined to the TO site s0, reads roam to s1/s2. The SGT site makes the
// stock run pay for tickets the mix never needed.
constexpr char kRobustMix[] =
    "mix keys_per_class=8 local_txns=0\n"
    "template hot_update weight=3 : r0@s0 w0@s0 r1@s1\n"
    "template hot_audit weight=2 : r0@s0 w0@s0 r2@s2\n"
    "template far_report weight=1 : r3@s1 r4@s2\n";

const ProtocolKind kFastPathSites[] = {ProtocolKind::kTimestampOrdering,
                                       ProtocolKind::kSerializationGraph,
                                       ProtocolKind::kTimestampOrdering};

DriverReport RunMix(const mdbs::analysis::TemplateMix& mix, bool fast_path,
                    int clients, uint64_t seed) {
  MdbsConfig config = MdbsConfig::Mixed(
      {kFastPathSites[0], kFastPathSites[1], kFastPathSites[2]},
      SchemeKind::kScheme3);
  config.seed = seed;
  config.audit.enabled = false;  // Auditing is for correctness runs.
  config.threaded = true;
  config.gtm.attempt_timeout = 30'000;
  if (fast_path) {
    config.gtm.certified_fast_path = true;
    config.gtm.scheme_factory = []() {
      return mdbs::gtm::MakeRobustFastPath(SchemeKind::kScheme3);
    };
  }
  Mdbs system(config);
  DriverConfig driver;
  driver.global_clients = clients;
  driver.local_clients_per_site = 0;  // The certificate's local_txns=0.
  driver.target_global_commits = 200;
  driver.global_think = 200;
  driver.templates = mix;
  return RunThreadedDriver(&system, driver, seed);
}

}  // namespace

int main(int argc, char** argv) {
  mdbs::bench::BenchReport results("threaded");
  std::printf("E9 — threaded engine: committed global txns/sec vs thread "
              "count\n");
  std::printf("4 heterogeneous sites (2PL, TO, SGT, OCC), real client "
              "threads, 200 global commits per cell\n\n");
  std::printf("%-10s %8s %12s %10s %10s %10s %9s  %s\n", "scheme", "threads",
              "txns/sec", "resp_p50", "resp_p95", "duration", "scale_x1",
              "bottleneck");
  for (SchemeKind scheme :
       {SchemeKind::kScheme0, SchemeKind::kScheme1, SchemeKind::kScheme2,
        SchemeKind::kScheme3}) {
    double base = 0;
    for (int clients : {1, 2, 4, 8}) {
      RunResult run =
          RunOne(scheme, clients, static_cast<uint64_t>(clients * 11 + 3));
      const DriverReport& report = run.report;
      if (clients == 1) base = report.global_throughput;
      std::printf(
          "%-10s %8d %12.1f %10.0f %10.0f %9lldms %8.2fx  %s (%.0f%%)\n",
          mdbs::gtm::SchemeKindName(scheme), clients,
          report.global_throughput, report.global_response.Median(),
          report.global_response.P95(),
          static_cast<long long>(report.duration / 1000),
          base > 0 ? report.global_throughput / base : 0.0,
          run.snapshot ? TxnPhaseName(run.snapshot->bottleneck) : "?",
          run.snapshot ? run.snapshot->bottleneck_share * 100 : 0.0);
      mdbs::bench::BenchReport::Row& row =
          results.AddRow()
              .Set("scheme", mdbs::gtm::SchemeKindName(scheme))
              .Set("threads", static_cast<double>(clients))
              .Set("txns_per_sec", report.global_throughput)
              .Set("resp_p50", report.global_response.Median())
              .Set("resp_p95", report.global_response.P95())
              .Set("duration_us", static_cast<double>(report.duration))
              .Set("scale_x1",
                   base > 0 ? report.global_throughput / base : 0.0);
      if (run.snapshot) AddPhaseBreakdown(row, *run.snapshot);
    }
    std::printf("\n");
  }

  // Fast-path comparison on the certified robust mix.
  mdbs::StatusOr<mdbs::analysis::TemplateMix> mix =
      mdbs::analysis::ParseTemplateMix(kRobustMix);
  if (!mix.ok()) {
    std::fprintf(stderr, "robust mix did not parse: %s\n",
                 mix.status().ToString().c_str());
    return EXIT_FAILURE;
  }
  std::vector<mdbs::site::SiteConfig> sites;
  for (size_t i = 0; i < 3; ++i) {
    mdbs::site::SiteConfig site;
    site.id = mdbs::SiteId(static_cast<int64_t>(i));
    site.protocol = kFastPathSites[i];
    sites.push_back(site);
  }
  mdbs::analysis::AnalysisReport verdict = mdbs::analysis::Analyze(
      *mix, mdbs::analysis::BuildCapabilityMatrix(sites));
  if (!verdict.fast_path_robust) {
    std::fprintf(stderr, "robust mix no longer certifies — fix the bench\n");
    return EXIT_FAILURE;
  }
  std::printf("certified fast path vs stock Scheme3 on a robust mix\n");
  std::printf("3 sites (TO, SGT, TO), certificate: %s\n\n",
              verdict.certificate.c_str());
  std::printf("%-10s %8s %12s %10s %10s %10s\n", "mode", "threads",
              "txns/sec", "resp_p50", "resp_p95", "ser_waits");
  for (int clients : {2, 4, 8}) {
    double stock_tput = 0;
    for (bool fast_path : {false, true}) {
      DriverReport report = RunMix(*mix, fast_path, clients,
                                   static_cast<uint64_t>(clients * 13 + 7));
      if (!fast_path) stock_tput = report.global_throughput;
      std::printf("%-10s %8d %12.1f %10.0f %10.0f %10lld\n",
                  fast_path ? "fast_path" : "stock", clients,
                  report.global_throughput, report.global_response.Median(),
                  report.global_response.P95(),
                  static_cast<long long>(report.gtm2.ser_wait_additions));
      results.AddRow()
          .Set("mode", fast_path ? "fast_path" : "stock")
          .Set("threads", static_cast<double>(clients))
          .Set("txns_per_sec", report.global_throughput)
          .Set("resp_p50", report.global_response.Median())
          .Set("resp_p95", report.global_response.P95())
          .Set("ser_waits",
               static_cast<double>(report.gtm2.ser_wait_additions))
          .Set("fast_path_attempts",
               static_cast<double>(report.gtm1.fast_path_attempts))
          .Set("speedup_vs_stock",
               fast_path && stock_tput > 0
                   ? report.global_throughput / stock_tput
                   : 1.0);
    }
  }

  // E14 — always-on metrics overhead A/B: the same Scheme 3 cells with the
  // metrics engine on vs off. Budget: <2% throughput loss with it on.
  std::printf("\nE14 — metrics engine overhead (Scheme3, on vs off)\n");
  std::printf("%-12s %8s %12s %10s\n", "mode", "threads", "txns/sec",
              "overhead");
  for (int clients : {2, 4, 8}) {
    double tput_off = 0;
    for (bool metrics_on : {false, true}) {
      RunResult run = RunOne(SchemeKind::kScheme3, clients,
                             static_cast<uint64_t>(clients * 17 + 1),
                             metrics_on);
      const DriverReport& report = run.report;
      if (!metrics_on) tput_off = report.global_throughput;
      double overhead =
          metrics_on && tput_off > 0
              ? 1.0 - report.global_throughput / tput_off
              : 0.0;
      std::printf("%-12s %8d %12.1f %9.1f%%\n",
                  metrics_on ? "metrics_on" : "metrics_off", clients,
                  report.global_throughput, overhead * 100);
      mdbs::bench::BenchReport::Row& row =
          results.AddRow()
              .Set("mode", metrics_on ? "metrics_on" : "metrics_off")
              .Set("threads", static_cast<double>(clients))
              .Set("txns_per_sec", report.global_throughput)
              .Set("resp_p50", report.global_response.Median())
              .Set("resp_p95", report.global_response.P95())
              .Set("metrics_overhead", overhead);
      if (run.snapshot) AddPhaseBreakdown(row, *run.snapshot);
    }
  }

  results.WriteFromArgs(argc, argv);
  return 0;
}
