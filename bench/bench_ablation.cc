// E8 — Ablations of the design choices DESIGN.md calls out.
//
//  A. Scheme 1's TSG *cycle test*: marking every operation instead (no
//     cycle detection) degenerates to init-order FIFO per site — measured
//     as extra WAIT insertions for the same populations.
//  B. Ticket placement: injecting the forced-conflict ticket right after
//     begin (long latch window at SGT sites) vs after the last data
//     operation (short window) — measured end-to-end.
//  C. Ack pinning: cond(ser) requires the previous ser operation at the
//     site to be ACKED before releasing the next (all four schemes do
//     this). Dropping it lets the site execute ser operations in a
//     different order than GTM2 decided, and global serializability
//     breaks — the reason the paper's QUEUE carries acks at all.

#include <cstdio>
#include <memory>

#include "gtm/scheme1.h"
#include "gtm/scheme3.h"
#include "gtm/synthetic.h"
#include "mdbs/driver.h"
#include "mdbs/mdbs.h"

namespace {

using mdbs::DriverConfig;
using mdbs::DriverReport;
using mdbs::Mdbs;
using mdbs::MdbsConfig;
using mdbs::gtm::Scheme1;
using mdbs::gtm::Scheme3;
using mdbs::gtm::SchemeKind;
using mdbs::gtm::SyntheticConfig;
using mdbs::gtm::SyntheticGtmHarness;
using mdbs::gtm::SyntheticReport;
using mdbs::lcc::ProtocolKind;

void AblationA() {
  std::printf("-- E8a: Scheme 1 with vs without the TSG cycle test --\n");
  std::printf("%-20s %8s %8s %12s\n", "variant", "n", "dav", "waits/ser");
  // Many sites relative to n keeps the TSG sparse — the regime where the
  // cycle test can actually leave operations unmarked.
  for (int n : {4, 8, 16}) {
    for (bool mark_all : {false, true}) {
      int64_t waits = 0, sers = 0;
      for (uint64_t seed = 1; seed <= 10; ++seed) {
        SyntheticConfig config;
        config.sites = 24;
        config.active_txns = n;
        config.dav_min = 2;
        config.dav_max = 2;
        config.total_txns = 300;
        config.seed = seed;
        SyntheticGtmHarness harness(std::make_unique<Scheme1>(mark_all),
                                    config);
        SyntheticReport report = harness.Run();
        waits += report.ser_waits;
        sers += report.ser_ops;
      }
      std::printf("%-20s %8d %8s %12.4f\n",
                  mark_all ? "mark-all (no test)" : "cycle-marking", n, "2",
                  static_cast<double>(waits) / static_cast<double>(sers));
    }
  }
  std::printf("(The cycle test exists to leave acyclic transactions "
              "unconstrained; mark-all pays more waits.)\n\n");
}

void AblationB() {
  std::printf("-- E8b: ticket placement at SGT/OCC sites --\n");
  std::printf("%-14s %14s %10s %10s %10s\n", "placement", "thruput/Mtick",
              "resp_p50", "timeouts", "retries");
  for (bool ticket_last : {false, true}) {
    MdbsConfig config = MdbsConfig::Mixed(
        {ProtocolKind::kSerializationGraph,
         ProtocolKind::kSerializationGraph, ProtocolKind::kOptimistic},
        SchemeKind::kScheme3);
    config.seed = 5;
    config.audit.enabled = false;  // Auditing is for correctness runs.
    config.gtm.attempt_timeout = 30'000;
    config.gtm.ticket_last = ticket_last;
    Mdbs system(config);
    DriverConfig driver;
    driver.global_clients = 8;
    driver.local_clients_per_site = 1;
    driver.target_global_commits = 150;
    driver.global_workload.items_per_site = 100;
    driver.local_workload.items_per_site = 100;
    DriverReport report = RunDriver(&system, driver, 5);
    std::printf("%-14s %14.1f %10.0f %10lld %10lld\n",
                ticket_last ? "after-last-op" : "after-begin",
                report.global_throughput, report.global_response.Median(),
                static_cast<long long>(report.gtm1.timeouts),
                static_cast<long long>(report.gtm1.aborted_attempts));
    if (!system.CheckGloballySerializable().ok()) {
      std::printf("  !! serializability violated — bug\n");
    }
  }
  std::printf("(After-begin wins: it pins the global order before the "
              "subtransactions' data operations can accumulate local "
              "serialization-graph edges that contradict a late ticket, "
              "which costs aborts and timeouts.)\n\n");
}

void AblationC() {
  // Asynchronous sites execute in-flight operations in an order the GTM
  // only learns from acks (the synthetic harness models this: execution
  // order = ack order). With pinning there is never more than one ser
  // operation in flight per site, so nothing can reorder.
  std::printf("-- E8c: dropping the ack-pinning half of cond(ser) --\n");
  std::printf("%-16s %12s %16s\n", "variant", "runs",
              "ser(S)-violations");
  for (bool pin : {true, false}) {
    int violations = 0;
    const int kRuns = 20;
    for (uint64_t seed = 1; seed <= kRuns; ++seed) {
      SyntheticConfig config;
      config.sites = 4;
      config.active_txns = 12;
      config.dav_min = 2;
      config.dav_max = 3;
      config.total_txns = 200;
      config.ack_priority = 0.3;  // Plenty of in-flight reordering.
      config.seed = seed;
      SyntheticGtmHarness harness(std::make_unique<Scheme3>(pin), config);
      SyntheticReport report = harness.Run();
      if (!report.ser_schedule_serializable) ++violations;
    }
    std::printf("%-16s %12d %16d\n", pin ? "pinned (paper)" : "unpinned",
                kRuns, violations);
  }
  std::printf("(Without waiting for the previous ack, the site may execute "
              "ser operations in a different order than GTM2 decided — and "
              "ser(S) serializability is lost.)\n");
}

}  // namespace

int main() {
  std::printf("E8 — ablations of the schemes' design choices\n\n");
  AblationA();
  AblationB();
  AblationC();
  return 0;
}
