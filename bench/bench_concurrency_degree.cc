// E2 — Degree of concurrency (paper §4, §7).
//
// The paper compares schemes by how many operations they force into WAIT
// for the same insertion behavior: Scheme 3 >= Scheme 2 >= Scheme 0 and
// Scheme 1 >= Scheme 0 in permitted concurrency (fewer waits = more
// concurrency); Scheme 3 additionally admits *all* serializable schedules.
// This harness replays identical randomized populations (same seeds,
// same workload shape) through every scheme and reports WAIT insertions
// per ser operation, plus the Scheme 3 zero-wait check on serializable
// (politely ordered) streams.

#include <cstdio>
#include <map>
#include <vector>

#include "gtm/gtm2.h"
#include "gtm/synthetic.h"

namespace {

using mdbs::gtm::MakeScheme;
using mdbs::gtm::QueueOp;
using mdbs::gtm::SchemeKind;
using mdbs::gtm::SyntheticConfig;
using mdbs::gtm::SyntheticGtmHarness;
using mdbs::gtm::SyntheticReport;

const SchemeKind kSchemes[] = {SchemeKind::kScheme0, SchemeKind::kScheme1,
                               SchemeKind::kScheme2, SchemeKind::kScheme3};

void RunContentionSweep() {
  std::printf(
      "\n-- E2a: WAIT insertions per ser operation (lower = higher degree "
      "of concurrency) --\n");
  std::printf("%-10s %8s %8s %12s %12s %14s\n", "scheme", "n", "dav",
              "waits/ser", "ser_ops", "ser(S)-CSR");
  for (int n : {4, 16, 64}) {
    for (int dav : {2, 4}) {
      for (SchemeKind kind : kSchemes) {
        int64_t waits = 0, sers = 0;
        bool serializable = true;
        for (uint64_t seed = 1; seed <= 10; ++seed) {
          SyntheticConfig config;
          config.sites = 8;
          config.active_txns = n;
          config.dav_min = config.dav_max = dav;
          config.total_txns = 300;
          config.seed = seed;
          SyntheticGtmHarness harness(MakeScheme(kind), config);
          SyntheticReport report = harness.Run();
          waits += report.ser_waits;
          sers += report.ser_ops;
          serializable = serializable && report.ser_schedule_serializable;
        }
        std::printf("%-10s %8d %8d %12.4f %12lld %14s\n",
                    mdbs::gtm::SchemeKindName(kind), n, dav,
                    sers == 0 ? 0.0
                              : static_cast<double>(waits) /
                                    static_cast<double>(sers),
                    static_cast<long long>(sers),
                    serializable ? "yes" : "VIOLATED");
      }
      std::printf("\n");
    }
  }
}

// E2b: Scheme 3 admits all serializable schedules — on a politely ordered
// stream (per-site ser arrivals already in a consistent global order, each
// ack delivered before the next ser of its site is enqueued), Scheme 3
// inserts nothing into WAIT while Scheme 0 still can.
void RunPoliteStream() {
  std::printf(
      "-- E2b: serializable (polite) streams — ser WAIT insertions --\n");
  std::printf("%-10s %14s\n", "scheme", "ser_waits");
  const int kTxns = 64;
  const int kSites = 6;
  for (SchemeKind kind : kSchemes) {
    int64_t total_waits = 0;
    for (uint64_t seed = 1; seed <= 10; ++seed) {
      mdbs::Rng rng(seed);
      // Build the population.
      struct Txn {
        mdbs::GlobalTxnId id;
        std::vector<mdbs::SiteId> sites;
      };
      std::vector<Txn> txns;
      for (int t = 0; t < kTxns; ++t) {
        std::vector<mdbs::SiteId> all;
        for (int s = 0; s < kSites; ++s) all.push_back(mdbs::SiteId(s));
        rng.Shuffle(&all);
        all.resize(1 + rng.NextBelow(3));
        txns.push_back(Txn{mdbs::GlobalTxnId(t), all});
      }
      std::vector<QueueOp> acks;
      mdbs::gtm::Gtm2::Callbacks callbacks;
      callbacks.release_ser = [&acks](mdbs::GlobalTxnId txn,
                                      mdbs::SiteId site) {
        acks.push_back(QueueOp::Ack(txn, site));
      };
      mdbs::gtm::Gtm2 gtm2(MakeScheme(kind), std::move(callbacks));
      // Init everything in a *shuffled* order, then run txns serially in
      // id order (π). The stream is serializable — per-site execution
      // requests arrive in π order with acks delivered promptly — but the
      // init order disagrees with π, which is exactly where BT-schemes
      // like Scheme 0 pay waits and Scheme 3 does not.
      std::vector<size_t> init_order(txns.size());
      for (size_t i = 0; i < txns.size(); ++i) init_order[i] = i;
      rng.Shuffle(&init_order);
      for (size_t index : init_order) {
        gtm2.Enqueue(QueueOp::Init(txns[index].id, txns[index].sites));
      }
      for (const Txn& txn : txns) {
        for (mdbs::SiteId site : txn.sites) {
          gtm2.Enqueue(QueueOp::Ser(txn.id, site));
          while (!acks.empty()) {
            QueueOp ack = acks.back();
            acks.pop_back();
            gtm2.Enqueue(ack);
          }
        }
        gtm2.Enqueue(QueueOp::Validate(txn.id));
        gtm2.Enqueue(QueueOp::Fin(txn.id));
      }
      total_waits += gtm2.stats().ser_wait_additions;
    }
    std::printf("%-10s %14lld\n", mdbs::gtm::SchemeKindName(kind),
                static_cast<long long>(total_waits));
  }
  std::printf("(Scheme 3 must be exactly 0 — it permits the set of all "
              "serializable schedules, §7.)\n");
}

}  // namespace

int main() {
  std::printf("E2 — degree of concurrency of Schemes 0-3 (paper §4/§7)\n");
  RunContentionSweep();
  RunPoliteStream();
  return 0;
}
